//! Cluster figure: goodput and tail latency per routing policy over the
//! multi-node serving tier, swept across offered load and fleet size on a
//! Zipf-skewed model mix.
//!
//! `--smoke` runs exactly the committed smoke configuration (the one the
//! integration tests pin): 4 nodes, 4 models, ~75% of fleet capacity, all
//! four policies. Same seed ⇒ bit-identical output.

use paella_bench::{header, row, scaled};
use paella_cluster::RoutingPolicy;
use paella_workload::{run_cluster_point, smoke_models, ClusterExpSpec};

const POLICIES: [RoutingPolicy; 4] = [
    RoutingPolicy::RoundRobin,
    RoutingPolicy::Jsq,
    RoutingPolicy::PowerOfTwoChoices,
    RoutingPolicy::LeastRemainingWork,
];

fn point_row(nodes: usize, policy: RoutingPolicy, spec: &ClusterExpSpec) -> [String; 4] {
    let r = run_cluster_point(&smoke_models(), spec);
    [
        nodes.to_string(),
        policy.as_str().to_string(),
        format!("{:.0}", r.offered),
        r.row(),
    ]
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    header(
        "Figure C (cluster)",
        "goodput and p99 JCT per routing policy, Zipf-skewed 4-model mix",
    );
    row(&[
        "nodes".into(),
        "policy".into(),
        "offered_req_per_s".into(),
        "throughput_req_per_s,goodput_req_per_s,p99_us,mean_us".into(),
    ]);
    if smoke {
        // The committed configuration, verbatim — CI checks this output is
        // deterministic and the tests assert the policy ordering on it.
        let grid = paella_bench::sweep::run_grid(POLICIES.len(), |i| {
            let policy = POLICIES[i];
            let spec = ClusterExpSpec::smoke(policy);
            point_row(spec.nodes, policy, &spec)
        });
        for r in &grid {
            row(r);
        }
        return;
    }
    // Full sweep: fleet size x offered load (per node, so the x-axis is
    // comparable across fleet sizes) x policy.
    let requests = scaled(700);
    let fleets = [2usize, 4, 8];
    let rates = [800.0, 1_100.0, 1_300.0, 1_450.0];
    let cells = fleets.len() * rates.len() * POLICIES.len();
    let grid = paella_bench::sweep::run_grid(cells, |i| {
        let nodes = fleets[i / (rates.len() * POLICIES.len())];
        let rate_per_node = rates[(i / POLICIES.len()) % rates.len()];
        let policy = POLICIES[i % POLICIES.len()];
        let spec = ClusterExpSpec {
            nodes,
            rate_per_sec: rate_per_node * nodes as f64,
            requests,
            warmup: requests / 7,
            ..ClusterExpSpec::smoke(policy)
        };
        point_row(nodes, policy, &spec)
    });
    for r in &grid {
        row(r);
    }
}
