#![warn(missing_docs)]

//! # paella-gpu
//!
//! A discrete-event simulator of NVIDIA-style GPU kernel scheduling — the
//! hardware substrate the Paella paper runs on, rebuilt in software because
//! this reproduction has no physical GPU.
//!
//! The simulator implements the *documented* scheduling semantics the paper
//! exploits and works around (§2.1): strict-FIFO hardware queues, stream→
//! queue mapping per microarchitecture generation (Fermi's single queue,
//! Kepler+'s 32 queues), static per-SM block resource allocation (Table 1),
//! head-of-line blocking, copy engines, and the device-side notification
//! instrumentation Paella's compiler inserts (Fig. 6), including batched
//! notifications and their calibrated overheads (Fig. 15).
//!
//! See [`engine::GpuSim`] for the main entry point.

pub mod config;
pub mod engine;
pub mod kernel;
pub mod resources;

pub use config::{DeviceConfig, Microarch};
pub use engine::{CopyDir, GpuOutput, GpuSim, MemcpyOp, MemcpyUid, TraceEntry};
pub use kernel::{DurationModel, InstrumentationSpec, KernelDesc, KernelLaunch, StreamId};
pub use resources::{blocks_per_sm, BlockFootprint, SmLimits, SmUsage};
