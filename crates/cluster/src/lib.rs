//! The cluster serving tier: N Paella nodes behind a software-defined
//! router, on one deterministic virtual clock.
//!
//! The paper stops at one GPU behind one dispatcher; this crate builds the
//! layer above it. Each node is a full Paella [`Dispatcher`] over its own
//! simulated device, reached through the same [`RpcNetModel`] cost model
//! remote inference uses. A [`ClusterRouter`] balances requests across each
//! model's replica set — round-robin, JSQ, power-of-two-choices, or the
//! Paella-native least-remaining-work policy fed by every node's SRPT load
//! signal — a [`PlacementManager`] pins models to replica sets under a
//! per-node memory budget, and an optional [`Autoscaler`] grows and drains
//! the fleet on sustained backlog, paying a modelled cold-start (weights
//! over PCIe) for every node it adds.
//!
//! Determinism: all nodes advance in lockstep on the shared DES clock. The
//! cluster's `advance_until` repeatedly processes the globally earliest
//! event (router arrival, node ingress, or node-internal work); ties break
//! router-first, then by node index, and the only randomness (power-of-two
//! sampling) comes from a seeded [`Xoshiro256pp`], so the same seed replays
//! the same execution bit for bit.

#![warn(missing_docs)]

pub mod autoscaler;
pub mod placement;
pub mod router;

pub use autoscaler::{AutoscaleConfig, Autoscaler, ScaleDecision};
pub use placement::{PlacementConfig, PlacementManager};
pub use router::{ClusterRouter, NodeLoad, RoutingPolicy};

use std::collections::HashMap;

use paella_channels::ChannelConfig;
use paella_compiler::CompiledModel;
use paella_core::dispatcher::{Dispatcher, DispatcherConfig};
use paella_core::remote::RpcNetModel;
use paella_core::sched::SrptDeficitScheduler;
use paella_core::serve::ServingSystem;
use paella_core::types::{
    ClientId, FailureReason, InferenceRequest, JobCompletion, JobFailure, LoadSignal, ModelId,
};
use paella_gpu::DeviceConfig;
use paella_sim::{EventQueue, FaultKind, FaultPlan, SimDuration, SimTime, Xoshiro256pp};
use paella_telemetry::{MetricsRegistry, MetricsSnapshot, TraceEvent, TraceLog, Tracer};

/// Cluster-wide knobs.
#[derive(Clone, Copy, Debug)]
pub struct ClusterConfig {
    /// Client↔router and router↔node network cost model.
    pub net: RpcNetModel,
    /// Balancing policy.
    pub policy: RoutingPolicy,
    /// Replication factor and per-node memory budget.
    pub placement: PlacementConfig,
    /// Autoscaling; `None` pins the fleet at its initial size.
    pub autoscale: Option<AutoscaleConfig>,
    /// Configuration for every node's dispatcher (deadlines, shedding, and
    /// retry knobs included — DESIGN §11).
    pub dispatcher: DispatcherConfig,
    /// How many times the frontend re-routes a request lost to a node crash
    /// before reporting it failed (per-request budget).
    pub crash_retries: u32,
    /// Seed for node dispatchers and the router's RNG.
    pub seed: u64,
}

impl ClusterConfig {
    /// Defaults with the given policy: eRPC-style network, 2× replication
    /// under a 16 GB budget, no autoscaling, the Paella dispatcher on every
    /// node, and up to 3 crash re-routes per request.
    pub fn with_policy(policy: RoutingPolicy) -> Self {
        ClusterConfig {
            net: RpcNetModel::default(),
            policy,
            placement: PlacementConfig::default(),
            autoscale: None,
            dispatcher: DispatcherConfig::paella(),
            crash_retries: 3,
            seed: 0,
        }
    }
}

/// Node lifecycle. Requests route only to `Online` nodes (with a fallback
/// to warming/draining replicas if a model has no online replica at all).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum NodeState {
    /// Activating and loading weights; becomes `Online` at the stored time.
    ColdStarting {
        /// When the node finishes warming.
        ready_at: SimTime,
    },
    /// Serving.
    Online,
    /// Excluded from routing; finishing its outstanding requests.
    Draining,
    /// Drained; retains its (warm) weights and can be reactivated cheaply.
    Offline,
}

struct Node {
    dispatcher: Dispatcher,
    state: NodeState,
    /// Crashed by fault injection: `Offline` but *not* reactivatable until a
    /// recovery event lands (a crash drops the node's device memory, so even
    /// the autoscaler must treat it as gone, not warm).
    crashed: bool,
    /// Public model id → node-local id (`None` if not replicated here).
    local_ids: Vec<Option<ModelId>>,
    /// Requests crossing the router→node link, with the work estimate the
    /// router charged them (`(request-with-public-id, estimate)`).
    ingress: EventQueue<(InferenceRequest, SimDuration)>,
    /// Count and estimated work of requests still in the network.
    in_network: u64,
    in_network_work: SimDuration,
    /// Routed minus completed — the JSQ signal.
    outstanding: u64,
}

impl Node {
    fn load(&self) -> NodeLoad {
        let s = self.dispatcher.load_signal();
        NodeLoad {
            outstanding: self.outstanding,
            remaining_work: s.remaining_work + self.in_network_work,
            kv_pressure_bp: s.kv_pressure_bp(),
        }
    }
}

struct ClusterModel {
    model: CompiledModel,
    replicas: Vec<usize>,
    /// Bootstrap total-time estimate, used to account for requests the
    /// target node has not seen yet (in-network work).
    estimate: SimDuration,
}

enum FrontEv {
    /// A request reached the router.
    Arrive(InferenceRequest),
    /// A request lost to a node crash re-enters routing. Unlike `Arrive`,
    /// `submitted_at` is the request's *original* submission time, preserved
    /// across re-routes so deadlines and reported latency stay anchored to
    /// when the client actually called predict.
    Reroute(InferenceRequest),
    /// A cold-starting node finished warming.
    NodeReady(usize),
    /// Periodic autoscaler evaluation.
    ScaleTick,
    /// An injected fault fires (node crash/recovery, client disconnect).
    Fault(FaultKind),
}

/// Per-node outstanding-depth series names (the metrics registry requires
/// `'static` keys, so the first 16 nodes get named series).
const NODE_DEPTH: [&str; 16] = [
    "node0_outstanding",
    "node1_outstanding",
    "node2_outstanding",
    "node3_outstanding",
    "node4_outstanding",
    "node5_outstanding",
    "node6_outstanding",
    "node7_outstanding",
    "node8_outstanding",
    "node9_outstanding",
    "node10_outstanding",
    "node11_outstanding",
    "node12_outstanding",
    "node13_outstanding",
    "node14_outstanding",
    "node15_outstanding",
];

/// A multi-GPU Paella deployment: N dispatcher nodes behind one router, all
/// on the shared virtual clock. Implements [`ServingSystem`] so every
/// harness that drives a single node drives a cluster unchanged.
pub struct Cluster {
    device: DeviceConfig,
    channels: ChannelConfig,
    cfg: ClusterConfig,
    nodes: Vec<Node>,
    models: Vec<ClusterModel>,
    placement: PlacementManager,
    router: ClusterRouter,
    autoscaler: Option<Autoscaler>,
    frontend: EventQueue<FrontEv>,
    /// Whether a ScaleTick is already scheduled (one in flight at a time).
    tick_scheduled: bool,
    completions: Vec<JobCompletion>,
    /// Terminal failures (public ids, original submission times).
    failures: Vec<JobFailure>,
    /// Crash re-routes consumed per request, keyed by
    /// `(client, public model, original submitted_at ns)`.
    reroutes: HashMap<(u32, u32, u64), u32>,
    tracer: Tracer,
    metrics: Option<Box<MetricsRegistry>>,
    /// Router-tier flight-recorder dumps (replica loss), awaiting
    /// [`ServingSystem::take_postmortems`].
    postmortems: Vec<String>,
    scale_ups: u64,
    scale_downs: u64,
}

impl Cluster {
    /// A cluster of `nodes` identical devices with the Paella dispatcher
    /// configuration (SRPT + deficit) on every node.
    pub fn new(device: DeviceConfig, nodes: usize, cfg: ClusterConfig) -> Self {
        assert!(nodes > 0, "a cluster needs at least one node");
        let channels = ChannelConfig::default();
        let node_vec = (0..nodes)
            .map(|i| Node {
                dispatcher: make_dispatcher(&device, channels, &cfg, i as u64),
                state: NodeState::Online,
                crashed: false,
                local_ids: Vec::new(),
                ingress: EventQueue::new(),
                in_network: 0,
                in_network_work: SimDuration::ZERO,
                outstanding: 0,
            })
            .collect();
        let mut rng = Xoshiro256pp::seed_from_u64(cfg.seed ^ 0xC1A5_7E2D);
        let router_seed = rng.next_u64();
        Cluster {
            device,
            channels,
            placement: PlacementManager::new(cfg.placement, nodes),
            router: ClusterRouter::new(cfg.policy, router_seed),
            autoscaler: cfg.autoscale.map(Autoscaler::new),
            cfg,
            nodes: node_vec,
            models: Vec::new(),
            frontend: EventQueue::new(),
            tick_scheduled: false,
            completions: Vec::new(),
            failures: Vec::new(),
            reroutes: HashMap::new(),
            tracer: Tracer::disabled(),
            metrics: None,
            postmortems: Vec::new(),
            scale_ups: 0,
            scale_downs: 0,
        }
    }

    /// Total nodes (any state).
    pub fn nodes_total(&self) -> usize {
        self.nodes.len()
    }

    /// Nodes currently serving.
    pub fn nodes_online(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| n.state == NodeState::Online)
            .count()
    }

    /// Lifecycle state of `node`.
    pub fn node_state(&self, node: usize) -> NodeState {
        self.nodes[node].state
    }

    /// The replica set a model was pinned to.
    pub fn replicas(&self, model: ModelId) -> &[usize] {
        &self.models[model.0 as usize].replicas
    }

    /// `(scale-ups, scale-downs)` performed so far.
    pub fn scale_events(&self) -> (u64, u64) {
        (self.scale_ups, self.scale_downs)
    }

    /// Cold-start cost of a node holding `weight_bytes` of models: fixed
    /// activation plus the weights over one PCIe copy engine.
    fn cold_start_cost(&self, weight_bytes: u64) -> SimDuration {
        let activation = self
            .cfg
            .autoscale
            .map_or(SimDuration::ZERO, |a| a.activation);
        let copy_us = weight_bytes as f64 / self.device.pcie_bytes_per_sec * 1e6;
        activation + SimDuration::from_micros_f64(copy_us)
    }

    fn schedule_tick_after(&mut self, t: SimTime) {
        if self.autoscaler.is_none() || self.tick_scheduled {
            return;
        }
        // invariant: autoscaler.is_none() was just checked above.
        let interval = self.autoscaler.as_ref().expect("checked").config().interval;
        self.frontend
            .schedule_at(t.max(self.frontend.now()) + interval, FrontEv::ScaleTick);
        self.tick_scheduled = true;
    }

    /// Requests anywhere in the cluster (in-network, queued, in-flight).
    fn total_outstanding(&self) -> u64 {
        self.nodes.iter().map(|n| n.outstanding).sum()
    }

    // -- event handlers -----------------------------------------------------

    /// The routable replica subset of a model: online members first, then
    /// warming/draining members (the request waits in the node's
    /// ingress/queue rather than being dropped), then warm-offline members.
    /// Crashed nodes never qualify — routing to one would lose the request
    /// again. Empty means every replica is currently crashed.
    fn route_candidates(&self, public: usize) -> Vec<usize> {
        let all = &self.models[public].replicas;
        let mut candidates: Vec<usize> = all
            .iter()
            .copied()
            .filter(|&i| self.nodes[i].state == NodeState::Online)
            .collect();
        if candidates.is_empty() {
            candidates = all
                .iter()
                .copied()
                .filter(|&i| self.nodes[i].state != NodeState::Offline)
                .collect();
        }
        if candidates.is_empty() {
            candidates = all
                .iter()
                .copied()
                .filter(|&i| !self.nodes[i].crashed)
                .collect();
        }
        candidates
    }

    /// Routes a request (public ids) to one node and puts it on the wire.
    /// `anchor` carries a re-routed request's original submission time; a
    /// fresh arrival anchors at its ingress landing instead. If every
    /// replica has crashed the request fails terminally.
    fn dispatch_to_node(&mut self, at: SimTime, req: InferenceRequest, anchor: Option<SimTime>) {
        let public = req.model.0 as usize;
        assert!(public < self.models.len(), "unknown model {:?}", req.model);
        let candidates = self.route_candidates(public);
        if candidates.is_empty() {
            self.fail_terminal(req, at, FailureReason::NodeCrash);
            return;
        }
        let loads: Vec<NodeLoad> = candidates.iter().map(|&i| self.nodes[i].load()).collect();
        let pos = self.router.pick(&candidates, &loads);
        let chosen = candidates[pos];
        let outstanding = loads[pos].outstanding;
        if self.tracer.is_enabled() {
            let (model, node, policy, n_cand) = (
                public as u32,
                chosen as u32,
                self.router.policy().as_str(),
                candidates.len() as u32,
            );
            self.tracer.record_with(at, || TraceEvent::RouteDecision {
                model,
                node,
                policy,
                outstanding,
                candidates: n_cand,
            });
        }
        if let Some(m) = self.metrics.as_mut() {
            m.inc("requests_routed", 1);
            if let Some(name) = NODE_DEPTH.get(chosen) {
                m.gauge(name, outstanding + 1);
                m.sample(name, at, outstanding + 1);
            }
        }
        let est = self.models[public].estimate;
        let hop = self.cfg.net.transfer(self.models[public].model.input_bytes);
        let node = &mut self.nodes[chosen];
        node.outstanding += 1;
        node.in_network += 1;
        node.in_network_work += est;
        let arrive = (at + hop).max(node.ingress.now());
        // The node-facing submission time embeds the two ingress crossings
        // `collect_completions`/`collect_failures` subtract back out, so a
        // re-routed request's reconstructed origin stays its *original*
        // submission no matter how many routing rounds it took.
        let submitted = anchor.map_or(arrive, |orig| orig + hop * 2);
        node.ingress.schedule_at(
            arrive,
            (
                InferenceRequest {
                    submitted_at: submitted,
                    ..req
                },
                est,
            ),
        );
    }

    fn on_arrive(&mut self, at: SimTime, req: InferenceRequest) {
        self.dispatch_to_node(at, req, None);
    }

    fn on_reroute(&mut self, at: SimTime, req: InferenceRequest) {
        let orig = req.submitted_at;
        self.dispatch_to_node(at, req, Some(orig));
    }

    /// Records a terminal failure (public ids, original submission time) and
    /// retires any re-route budget the request consumed.
    fn fail_terminal(&mut self, req: InferenceRequest, at: SimTime, reason: FailureReason) {
        self.reroutes
            .remove(&(req.client.0, req.model.0, req.submitted_at.as_nanos()));
        if let Some(m) = self.metrics.as_mut() {
            m.inc("requests_failed", 1);
            m.slo_fail(req.client.0, reason.as_str());
        }
        // Losing a request to a crash with no surviving replica (or a spent
        // crash budget) is the cluster's terminal failure: snapshot the
        // router tier's flight ring into a post-mortem dump (DESIGN §12).
        if reason == FailureReason::NodeCrash {
            self.record_postmortem("replica-loss", at);
        }
        self.failures.push(JobFailure {
            request: req,
            reason,
            at,
        });
    }

    /// Renders the router tier's flight-recorder ring plus fixed-order
    /// cluster state into a deterministic post-mortem dump.
    fn record_postmortem(&mut self, trigger: &str, at: SimTime) {
        if !self.tracer.is_enabled() {
            return;
        }
        let online = self
            .nodes
            .iter()
            .filter(|n| n.state == NodeState::Online)
            .count() as u64;
        let crashed = self.nodes.iter().filter(|n| n.crashed).count() as u64;
        let outstanding: u64 = self.nodes.iter().map(|n| n.outstanding).sum();
        let state = [
            ("frontend_queued", self.frontend.len() as u64),
            ("nodes_online", online),
            ("nodes_crashed", crashed),
            ("outstanding", outstanding),
            ("failures", self.failures.len() as u64),
        ];
        let events = self.tracer.flight_snapshot();
        self.postmortems.push(paella_telemetry::flight::render(
            trigger, at, &state, &events,
        ));
    }

    /// A request lost to a node crash: re-enter routing if its per-request
    /// budget allows, otherwise fail it terminally. `req` carries public ids
    /// and the *original* submission time.
    fn try_reroute(&mut self, at: SimTime, req: InferenceRequest) {
        let key = (req.client.0, req.model.0, req.submitted_at.as_nanos());
        let used = self.reroutes.get(&key).copied().unwrap_or(0);
        if used >= self.cfg.crash_retries {
            self.fail_terminal(req, at, FailureReason::NodeCrash);
            return;
        }
        self.reroutes.insert(key, used + 1);
        let (client, model, attempt) = (req.client.0, req.model.0, used + 1);
        self.tracer.record_with(at, || TraceEvent::FailoverHop {
            client,
            model,
            attempt,
        });
        if let Some(m) = self.metrics.as_mut() {
            m.inc("requests_rerouted", 1);
        }
        self.frontend
            .schedule_at(at.max(self.frontend.now()), FrontEv::Reroute(req));
    }

    fn on_fault(&mut self, at: SimTime, kind: FaultKind) {
        match kind {
            FaultKind::NodeCrash(i) => self.on_node_crash(at, i as usize),
            FaultKind::NodeRecover(i) => self.on_node_recover(at, i as usize),
            FaultKind::ClientDisconnect(c) => self.on_client_disconnect(at, ClientId(c)),
        }
    }

    /// A node crash: results already produced survive, everything else on
    /// the node — queued ingress, queued jobs, in-flight kernels — is lost
    /// and re-enters routing under the per-request crash budget. The node
    /// goes `Offline` with `crashed` set, so neither the router nor the
    /// autoscaler touches it until a recovery event lands.
    fn on_node_crash(&mut self, at: SimTime, i: usize) {
        if i >= self.nodes.len() || self.nodes[i].crashed {
            return;
        }
        self.tracer
            .record_with(at, || TraceEvent::NodeCrash { node: i as u32 });
        if let Some(m) = self.metrics.as_mut() {
            m.inc("node_crashes", 1);
        }
        self.collect_completions(i);
        self.nodes[i].crashed = true;
        self.nodes[i].state = NodeState::Offline;
        self.nodes[i]
            .dispatcher
            .cancel_all(at, FailureReason::NodeCrash);
        self.collect_failures(i);
        // Requests still crossing the wire to the crashed node are lost too.
        let pending = self.nodes[i].ingress.drain();
        let net = self.cfg.net;
        let mut underflows = 0u64;
        for (_, (req, _est)) in pending {
            let n = &mut self.nodes[i];
            match n.outstanding.checked_sub(1) {
                Some(v) => n.outstanding = v,
                None => underflows += 1,
            }
            let ingress = net.transfer(self.models[req.model.0 as usize].model.input_bytes) * 2;
            let orig = SimTime::from_nanos(
                req.submitted_at
                    .as_nanos()
                    .saturating_sub(ingress.as_nanos()),
            );
            self.try_reroute(
                at,
                InferenceRequest {
                    submitted_at: orig,
                    ..req
                },
            );
        }
        // Completions, failures, and the drained ingress must account for
        // every request the router charged to this node.
        let n = &mut self.nodes[i];
        n.in_network = 0;
        n.in_network_work = SimDuration::ZERO;
        if n.outstanding != 0 {
            underflows += 1;
            n.outstanding = 0;
        }
        debug_assert_eq!(underflows, 0, "node {i} crash accounting out of balance");
        if underflows > 0 {
            if let Some(m) = self.metrics.as_mut() {
                m.inc("accounting_underflow", underflows);
            }
        }
    }

    /// Recovery from a crash pays a *full* cold start — activation plus all
    /// replicated weights back over PCIe — because the crash dropped the
    /// node's device memory (unlike a drained node, which stays warm).
    fn on_node_recover(&mut self, at: SimTime, i: usize) {
        if i >= self.nodes.len() || !self.nodes[i].crashed {
            return;
        }
        self.tracer
            .record_with(at, || TraceEvent::NodeRecover { node: i as u32 });
        if let Some(m) = self.metrics.as_mut() {
            m.inc("node_recoveries", 1);
        }
        self.nodes[i].crashed = false;
        let weight: u64 = self
            .models
            .iter()
            .enumerate()
            .filter(|(p, _)| self.nodes[i].local_ids.get(*p).is_some_and(|l| l.is_some()))
            .map(|(_, m)| m.model.weight_bytes)
            .sum();
        let ready_at = at + self.cold_start_cost(weight);
        self.nodes[i].state = NodeState::ColdStarting { ready_at };
        self.frontend.schedule_at(ready_at, FrontEv::NodeReady(i));
    }

    /// A client disconnect: every node cancels the client's queued and
    /// in-flight jobs now; anything of theirs still crossing the network is
    /// refused at node ingress by the dispatcher's disconnect set.
    fn on_client_disconnect(&mut self, at: SimTime, client: ClientId) {
        if let Some(m) = self.metrics.as_mut() {
            m.inc("client_disconnects", 1);
        }
        for i in 0..self.nodes.len() {
            self.nodes[i].dispatcher.cancel_client(client, at);
            self.collect_failures(i);
        }
    }

    fn on_node_ready(&mut self, node: usize) {
        if matches!(self.nodes[node].state, NodeState::ColdStarting { .. }) {
            self.nodes[node].state = NodeState::Online;
        }
    }

    fn on_scale_tick(&mut self, at: SimTime) {
        self.tick_scheduled = false;
        let outstanding = self.total_outstanding();
        let online = self.nodes_online();
        let active = self
            .nodes
            .iter()
            .filter(|n| matches!(n.state, NodeState::Online | NodeState::ColdStarting { .. }))
            .count();
        let decision = match self.autoscaler.as_mut() {
            Some(a) => a.observe(at, outstanding, online, active),
            None => ScaleDecision::Hold,
        };
        match decision {
            ScaleDecision::Up => self.scale_up(at),
            ScaleDecision::Down => self.drain_one(),
            ScaleDecision::Hold => {}
        }
        // Keep ticking while there is anything to watch — outstanding work,
        // pending arrivals, or an over-provisioned fleet that still needs to
        // drain down to `min_nodes`. Going quiet once all three clear is
        // what lets `run_to_idle` terminate.
        let min_nodes = self.autoscaler.as_ref().map_or(0, |a| a.config().min_nodes);
        if outstanding > 0 || !self.frontend.is_empty() || self.nodes_online() > min_nodes {
            self.schedule_tick_after(at);
        }
    }

    fn scale_up(&mut self, at: SimTime) {
        self.scale_ups += 1;
        if let Some(m) = self.metrics.as_mut() {
            m.inc("scale_ups", 1);
        }
        // Prefer re-activating a warm offline node: weights are resident,
        // only the activation delay applies. Crashed nodes are *not* warm —
        // the crash dropped their device memory — so they are skipped until
        // a recovery event brings them back.
        if let Some(i) = self
            .nodes
            .iter()
            .position(|n| n.state == NodeState::Offline && !n.crashed)
        {
            let ready_at = at + self.cold_start_cost(0);
            self.nodes[i].state = NodeState::ColdStarting { ready_at };
            self.frontend.schedule_at(ready_at, FrontEv::NodeReady(i));
            return;
        }
        // Fresh node: register every model that fits (public-id order) and
        // pay for its weights over PCIe.
        let i = self.placement.add_node();
        let mut node = Node {
            dispatcher: make_dispatcher(&self.device, self.channels, &self.cfg, i as u64),
            state: NodeState::Online, // overwritten below
            crashed: false,
            local_ids: vec![None; self.models.len()],
            ingress: EventQueue::new(),
            in_network: 0,
            in_network_work: SimDuration::ZERO,
            outstanding: 0,
        };
        let compiled: Vec<CompiledModel> = self.models.iter().map(|m| m.model.clone()).collect();
        let placed = self.placement.fill_node(i, &compiled);
        let mut weight = 0u64;
        for idx in placed {
            let local = node.dispatcher.register_model(&compiled[idx]);
            node.local_ids[idx] = Some(local);
            weight += compiled[idx].weight_bytes;
            self.models[idx].replicas.push(i);
        }
        let ready_at = at + self.cold_start_cost(weight);
        node.state = NodeState::ColdStarting { ready_at };
        self.nodes.push(node);
        self.frontend.schedule_at(ready_at, FrontEv::NodeReady(i));
    }

    fn drain_one(&mut self) {
        // Drain the least-loaded online node, highest index on ties, so the
        // fleet shrinks from the most recently added capacity.
        let victim = self
            .nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.state == NodeState::Online)
            .min_by_key(|(i, n)| (n.outstanding, usize::MAX - i))
            .map(|(i, _)| i);
        if let Some(i) = victim {
            self.scale_downs += 1;
            if let Some(m) = self.metrics.as_mut() {
                m.inc("scale_downs", 1);
            }
            self.nodes[i].state = if self.nodes[i].outstanding == 0 {
                NodeState::Offline
            } else {
                NodeState::Draining
            };
        }
    }

    /// Drains completions from node `i`, translating them back to the
    /// cluster's public ids and times.
    fn collect_completions(&mut self, i: usize) {
        let net = self.cfg.net;
        let mut drained = self.nodes[i].dispatcher.drain_completions();
        if drained.is_empty() {
            return;
        }
        for c in &mut drained {
            let public = self.nodes[i]
                .local_ids
                .iter()
                .position(|&l| l == Some(c.request.model))
                .unwrap_or_else(|| {
                    panic!(
                        "node {i} completed unknown local model {:?}",
                        c.request.model
                    )
                });
            let m = &self.models[public].model;
            // Two ingress crossings (client→router, router→node) were folded
            // into the submission time the node saw; both are deterministic
            // per model, so subtract them back out exactly.
            let ingress = net.transfer(m.input_bytes) * 2;
            let egress = net.transfer(m.output_bytes);
            c.request.model = ModelId(public as u32);
            c.request.submitted_at = SimTime::from_nanos(
                c.request
                    .submitted_at
                    .as_nanos()
                    .saturating_sub(ingress.as_nanos()),
            );
            c.client_visible_at += egress;
            c.breakdown.communication += ingress + egress;
            // A completed request retires whatever re-route budget it used.
            self.reroutes.remove(&(
                c.request.client.0,
                c.request.model.0,
                c.request.submitted_at.as_nanos(),
            ));
        }
        // A double-drain would underflow here; `checked_sub` surfaces the
        // accounting bug (debug assert + counter) instead of masking it the
        // way `saturating_sub` silently did.
        let n = &mut self.nodes[i];
        let under = match n.outstanding.checked_sub(drained.len() as u64) {
            Some(v) => {
                n.outstanding = v;
                false
            }
            None => {
                n.outstanding = 0;
                true
            }
        };
        debug_assert!(!under, "node {i} completed more requests than routed");
        if n.state == NodeState::Draining && n.outstanding == 0 {
            n.state = NodeState::Offline;
        }
        if under {
            if let Some(m) = self.metrics.as_mut() {
                m.inc("accounting_underflow", 1);
            }
        }
        self.completions.append(&mut drained);
    }

    /// Drains failures from node `i`, translating them back to public ids
    /// and original submission times. Crash-reason failures re-enter routing
    /// under the per-request budget; everything else is terminal.
    fn collect_failures(&mut self, i: usize) {
        let net = self.cfg.net;
        let drained = self.nodes[i].dispatcher.drain_failures();
        if drained.is_empty() {
            return;
        }
        for mut f in drained {
            let public = self.nodes[i]
                .local_ids
                .iter()
                .position(|&l| l == Some(f.request.model))
                .unwrap_or_else(|| {
                    panic!("node {i} failed unknown local model {:?}", f.request.model)
                });
            let ingress = net.transfer(self.models[public].model.input_bytes) * 2;
            f.request.model = ModelId(public as u32);
            f.request.submitted_at = SimTime::from_nanos(
                f.request
                    .submitted_at
                    .as_nanos()
                    .saturating_sub(ingress.as_nanos()),
            );
            let n = &mut self.nodes[i];
            let under = match n.outstanding.checked_sub(1) {
                Some(v) => {
                    n.outstanding = v;
                    false
                }
                None => true,
            };
            debug_assert!(!under, "node {i} failed more requests than routed");
            if n.state == NodeState::Draining && n.outstanding == 0 {
                n.state = NodeState::Offline;
            }
            if under {
                if let Some(m) = self.metrics.as_mut() {
                    m.inc("accounting_underflow", 1);
                }
            }
            if f.reason == FailureReason::NodeCrash {
                self.try_reroute(f.at, f.request);
            } else {
                self.fail_terminal(f.request, f.at, f.reason);
            }
        }
    }

    /// Whether node `i` is currently crashed (offline and not warm).
    pub fn node_crashed(&self, i: usize) -> bool {
        self.nodes[i].crashed
    }

    /// Arms a deterministic fault plan: the kernel-fault rate reaches every
    /// node's dispatcher (current and future — future nodes inherit it via
    /// the stored config) and each timed event is scheduled on the frontend
    /// clock, where it interleaves deterministically with workload events.
    pub fn inject(&mut self, plan: &FaultPlan) {
        self.cfg.dispatcher.kernel_fault_rate = plan.kernel_fault_rate;
        for n in &mut self.nodes {
            n.dispatcher.set_kernel_fault_rate(plan.kernel_fault_rate);
        }
        for e in &plan.events {
            self.frontend
                .schedule_at(e.at.max(self.frontend.now()), FrontEv::Fault(e.kind));
        }
    }
}

fn make_dispatcher(
    device: &DeviceConfig,
    channels: ChannelConfig,
    cfg: &ClusterConfig,
    node: u64,
) -> Dispatcher {
    Dispatcher::new(
        device.clone(),
        channels,
        Box::new(SrptDeficitScheduler::new(Some(2_000.0))),
        cfg.dispatcher,
        cfg.seed
            .wrapping_add(node)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15),
    )
}

impl ServingSystem for Cluster {
    /// Registers `model` on its replica set (chosen by the placement
    /// manager) and returns the cluster-public id.
    fn register_model(&mut self, model: &CompiledModel) -> ModelId {
        let public = ModelId(self.models.len() as u32);
        let replicas = self.placement.place(model);
        let mut estimate = SimDuration::ZERO;
        for &i in &replicas {
            let local = self.nodes[i].dispatcher.register_model(model);
            while self.nodes[i].local_ids.len() < public.0 as usize {
                self.nodes[i].local_ids.push(None);
            }
            self.nodes[i].local_ids.push(Some(local));
            estimate = self.nodes[i].dispatcher.profile_estimate(local);
        }
        // Non-replica nodes still need the id column to stay aligned.
        for n in &mut self.nodes {
            while n.local_ids.len() < public.0 as usize + 1 {
                n.local_ids.push(None);
            }
        }
        self.models.push(ClusterModel {
            model: model.clone(),
            replicas,
            estimate,
        });
        public
    }

    fn submit(&mut self, req: InferenceRequest) {
        let input = self.models[req.model.0 as usize].model.input_bytes;
        let arrive = (req.submitted_at + self.cfg.net.transfer(input)).max(self.frontend.now());
        self.frontend.schedule_at(arrive, FrontEv::Arrive(req));
        self.schedule_tick_after(arrive);
    }

    fn next_event_time(&mut self) -> Option<SimTime> {
        let mut t = self.frontend.peek_time();
        for n in &mut self.nodes {
            t = min_opt(t, n.ingress.peek_time());
            t = min_opt(t, n.dispatcher.next_event_time());
        }
        t
    }

    /// Lockstep advance: repeatedly process the globally earliest event at
    /// or before `t`. Ties break router-first, then node ingress by index,
    /// then node-internal work by index — a fixed order, so runs are
    /// deterministic.
    fn advance_until(&mut self, t: SimTime) {
        loop {
            let tf = self.frontend.peek_time();
            let mut ti: Option<(SimTime, usize)> = None;
            let mut tn: Option<(SimTime, usize)> = None;
            for (i, n) in self.nodes.iter_mut().enumerate() {
                if let Some(a) = n.ingress.peek_time() {
                    if ti.is_none_or(|(b, _)| a < b) {
                        ti = Some((a, i));
                    }
                }
                if let Some(a) = n.dispatcher.next_event_time() {
                    if tn.is_none_or(|(b, _)| a < b) {
                        tn = Some((a, i));
                    }
                }
            }
            let next = [tf, ti.map(|(a, _)| a), tn.map(|(a, _)| a)]
                .into_iter()
                .flatten()
                .min();
            let Some(next) = next else { break };
            if next > t {
                break;
            }
            if tf == Some(next) {
                // invariant: peek_time returned Some(next), so pop succeeds.
                let (at, ev) = self.frontend.pop().expect("peeked");
                match ev {
                    FrontEv::Arrive(req) => self.on_arrive(at, req),
                    FrontEv::Reroute(req) => self.on_reroute(at, req),
                    FrontEv::NodeReady(i) => self.on_node_ready(i),
                    FrontEv::ScaleTick => self.on_scale_tick(at),
                    FrontEv::Fault(kind) => self.on_fault(at, kind),
                }
            } else if let Some((a, i)) = ti.filter(|&(a, _)| a == next) {
                let n = &mut self.nodes[i];
                // invariant: peek_time returned Some(a), so pop succeeds.
                let (_, (req, est)) = n.ingress.pop().expect("peeked");
                // Checked, not saturating: a drain below the router's
                // in-network charge is an accounting bug worth surfacing.
                let mut under = false;
                match n.in_network.checked_sub(1) {
                    Some(v) => n.in_network = v,
                    None => under = true,
                }
                if n.in_network_work >= est {
                    n.in_network_work = n.in_network_work.saturating_sub(est);
                } else {
                    n.in_network_work = SimDuration::ZERO;
                    under = true;
                }
                let local = n.local_ids[req.model.0 as usize].unwrap_or_else(|| {
                    panic!("request routed to node {i} without model {:?}", req.model)
                });
                n.dispatcher.submit(InferenceRequest {
                    model: local,
                    ..req
                });
                debug_assert!(!under, "node {i} ingress drained below its charge");
                if under {
                    if let Some(m) = self.metrics.as_mut() {
                        m.inc("accounting_underflow", 1);
                    }
                }
                // Ingress-time refusals (shed, disconnected client) surface
                // here, not on the device clock — collect them promptly so a
                // node with no device work cannot strand `outstanding`.
                self.collect_failures(i);
                let _ = a;
            } else if let Some((a, i)) = tn {
                self.nodes[i].dispatcher.advance_until(a);
                self.collect_completions(i);
                self.collect_failures(i);
            }
        }
    }

    fn drain_completions(&mut self) -> Vec<JobCompletion> {
        std::mem::take(&mut self.completions)
    }

    fn drain_failures(&mut self) -> Vec<JobFailure> {
        std::mem::take(&mut self.failures)
    }

    fn name(&self) -> String {
        format!(
            "cluster[{}x{}]",
            self.nodes.len(),
            self.router.policy().as_str()
        )
    }

    /// Enables the router's own telemetry and forwards the call to every
    /// node's dispatcher.
    fn enable_telemetry(&mut self) {
        self.tracer = Tracer::enabled();
        self.tracer.set_flight_capacity(64);
        self.metrics = Some(Box::new(MetricsRegistry::new()));
        for n in &mut self.nodes {
            n.dispatcher.enable_telemetry();
        }
    }

    /// The router's trace merged with every node's host+device trace.
    fn take_trace_log(&mut self) -> Option<TraceLog> {
        if !self.tracer.is_enabled() {
            return None;
        }
        let mut sources = vec![self.tracer.take()];
        for n in &mut self.nodes {
            sources.push(n.dispatcher.take_trace_log());
        }
        Some(TraceLog::merged(sources))
    }

    /// The cluster-level registry (routing counters, per-node depth series).
    fn metrics_snapshot(&self) -> Option<MetricsSnapshot> {
        self.metrics.as_ref().map(|m| m.snapshot())
    }

    /// Router-tier dumps first, then each node's, in node order.
    fn take_postmortems(&mut self) -> Vec<String> {
        let mut out = std::mem::take(&mut self.postmortems);
        for n in &mut self.nodes {
            out.extend(n.dispatcher.take_postmortems());
        }
        out
    }

    /// Aggregate over all nodes plus requests still inside the router tier.
    fn load_signal(&self) -> LoadSignal {
        let mut s = LoadSignal {
            queued: self.frontend.len() as u64,
            ..LoadSignal::default()
        };
        for n in &self.nodes {
            let ns = n.dispatcher.load_signal();
            s.queued += ns.queued + n.in_network;
            s.inflight += ns.inflight;
            s.remaining_work += ns.remaining_work + n.in_network_work;
            s.kv_pages_used += ns.kv_pages_used;
            s.kv_pages_total += ns.kv_pages_total;
        }
        s
    }
}

fn min_opt(a: Option<SimTime>, b: Option<SimTime>) -> Option<SimTime> {
    match (a, b) {
        (Some(x), Some(y)) => Some(x.min(y)),
        (x, y) => x.or(y),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paella_core::types::ClientId;
    use paella_models::synthetic;

    fn cluster(nodes: usize, policy: RoutingPolicy) -> Cluster {
        Cluster::new(
            DeviceConfig::tesla_t4(),
            nodes,
            ClusterConfig {
                seed: 11,
                ..ClusterConfig::with_policy(policy)
            },
        )
    }

    fn submit_n(c: &mut Cluster, id: ModelId, n: u64, gap_us: u64) {
        for i in 0..n {
            c.submit(InferenceRequest {
                client: ClientId((i % 4) as u32),
                model: id,
                submitted_at: SimTime::from_micros(i * gap_us),
            });
        }
    }

    #[test]
    fn requests_complete_across_nodes() {
        let mut c = cluster(4, RoutingPolicy::Jsq);
        let m = synthetic::uniform_job("cl", 4, SimDuration::from_micros(150), 64);
        let id = c.register_model(&m);
        assert_eq!(c.replicas(id).len(), 2, "default 2x replication");
        submit_n(&mut c, id, 40, 100);
        c.run_to_idle();
        let done = c.drain_completions();
        assert_eq!(done.len(), 40);
        for d in &done {
            assert_eq!(d.request.model, id, "public id restored");
            assert!(d.client_visible_at > d.request.submitted_at);
        }
    }

    #[test]
    fn cluster_runs_are_bit_deterministic() {
        let run = |policy| {
            let mut c = cluster(4, policy);
            let m = synthetic::uniform_job("det", 6, SimDuration::from_micros(200), 64);
            let id = c.register_model(&m);
            submit_n(&mut c, id, 60, 40);
            c.run_to_idle();
            let mut done = c.drain_completions();
            done.sort_by_key(|d| (d.request.submitted_at, d.client_visible_at));
            done.iter()
                .map(|d| format!("{}:{}", d.request.submitted_at, d.client_visible_at))
                .collect::<Vec<_>>()
        };
        for policy in [
            RoutingPolicy::RoundRobin,
            RoutingPolicy::Jsq,
            RoutingPolicy::PowerOfTwoChoices,
            RoutingPolicy::LeastRemainingWork,
        ] {
            assert_eq!(run(policy), run(policy), "{policy:?} must replay exactly");
        }
    }

    #[test]
    fn network_crossings_are_charged() {
        // One idle node, one request: the cluster JCT must exceed a bare
        // dispatcher's by roughly three crossings (two in, one out).
        let m = synthetic::uniform_job("net", 4, SimDuration::from_micros(150), 64);
        let mut solo = make_dispatcher(
            &DeviceConfig::tesla_t4(),
            ChannelConfig::default(),
            &ClusterConfig {
                seed: 11,
                ..ClusterConfig::with_policy(RoutingPolicy::RoundRobin)
            },
            0,
        );
        let sid = solo.register_model(&m);
        solo.submit(InferenceRequest {
            client: ClientId(0),
            model: sid,
            submitted_at: SimTime::ZERO,
        });
        solo.run_to_idle();
        let jct_solo = solo.drain_completions()[0].jct();

        let mut c = cluster(1, RoutingPolicy::RoundRobin);
        let id = c.register_model(&m);
        c.submit(InferenceRequest {
            client: ClientId(0),
            model: id,
            submitted_at: SimTime::ZERO,
        });
        c.run_to_idle();
        let done = c.drain_completions();
        let net = RpcNetModel::default();
        let expected = net.transfer(m.input_bytes) * 2 + net.transfer(m.output_bytes);
        let extra = done[0].jct().saturating_sub(jct_solo);
        assert!(
            extra >= expected.saturating_sub(SimDuration::from_micros(2))
                && extra <= expected + SimDuration::from_micros(10),
            "extra {extra} vs expected {expected}"
        );
        assert!(done[0].breakdown.communication >= expected);
    }

    #[test]
    fn telemetry_passthrough_reaches_nodes_and_router() {
        let mut c = cluster(2, RoutingPolicy::LeastRemainingWork);
        let m = synthetic::uniform_job("tel", 4, SimDuration::from_micros(100), 32);
        let id = c.register_model(&m);
        c.enable_telemetry();
        submit_n(&mut c, id, 8, 50);
        c.run_to_idle();
        let trace = c.take_trace_log().expect("telemetry enabled");
        assert!(!trace.is_empty());
        let kinds: Vec<&str> = trace.events.iter().map(|e| e.event.kind()).collect();
        assert!(
            kinds.contains(&"route-decision"),
            "router events must be traced"
        );
        assert!(
            kinds.contains(&"job-begin"),
            "node dispatcher events must be forwarded"
        );
        let snap = c.metrics_snapshot().expect("metrics enabled");
        assert_eq!(snap.counter("requests_routed"), 8);
        assert!(snap.series("node0_outstanding").is_some());
    }

    #[test]
    fn autoscaler_grows_on_sustained_backlog_and_drains_after() {
        let mut c = Cluster::new(
            DeviceConfig::tesla_t4(),
            1,
            ClusterConfig {
                seed: 5,
                autoscale: Some(AutoscaleConfig {
                    min_nodes: 1,
                    max_nodes: 3,
                    high_watermark: 6.0,
                    low_watermark: 1.0,
                    sustain: SimDuration::from_micros(400),
                    interval: SimDuration::from_micros(200),
                    activation: SimDuration::from_micros(300),
                }),
                ..ClusterConfig::with_policy(RoutingPolicy::Jsq)
            },
        );
        let m = synthetic::uniform_job("as", 8, SimDuration::from_micros(300), 128);
        let id = c.register_model(&m);
        // A heavy burst, then silence: the cluster must grow, then shrink.
        submit_n(&mut c, id, 120, 10);
        c.run_to_idle();
        let done = c.drain_completions();
        assert_eq!(done.len(), 120, "scaling must not lose requests");
        let (ups, downs) = c.scale_events();
        assert!(ups >= 1, "sustained backlog must add capacity");
        assert!(downs >= 1, "idle fleet must drain back");
        assert!(c.nodes_total() > 1, "a node was added");
        assert_eq!(c.nodes_online(), 1, "drained back to min_nodes");
    }

    #[test]
    fn node_crash_reroutes_to_surviving_replica() {
        use paella_sim::FaultEvent;
        let mut c = cluster(2, RoutingPolicy::Jsq);
        let m = synthetic::uniform_job("fx", 4, SimDuration::from_micros(150), 64);
        let id = c.register_model(&m);
        assert_eq!(c.replicas(id).len(), 2);
        c.enable_telemetry();
        submit_n(&mut c, id, 30, 50);
        c.inject(&FaultPlan {
            kernel_fault_rate: 0.0,
            events: vec![FaultEvent {
                at: SimTime::from_micros(400),
                kind: FaultKind::NodeCrash(0),
            }],
        });
        c.run_to_idle();
        let done = c.drain_completions();
        let failed = c.drain_failures();
        assert_eq!(done.len() + failed.len(), 30, "every request accounted");
        assert!(
            failed.is_empty(),
            "a surviving replica absorbs everything: {failed:?}"
        );
        assert!(c.node_crashed(0));
        assert_eq!(c.node_state(0), NodeState::Offline);
        let snap = c.metrics_snapshot().expect("metrics enabled");
        assert_eq!(snap.counter("node_crashes"), 1);
        assert!(
            snap.counter("requests_rerouted") > 0,
            "the crash must have stranded work mid-run"
        );
        assert_eq!(snap.counter("accounting_underflow"), 0);
    }

    #[test]
    fn crash_of_sole_replica_fails_requests_terminally() {
        use paella_sim::FaultEvent;
        let mut c = cluster(1, RoutingPolicy::RoundRobin);
        let m = synthetic::uniform_job("solo", 4, SimDuration::from_micros(150), 64);
        let id = c.register_model(&m);
        c.enable_telemetry();
        submit_n(&mut c, id, 20, 50);
        c.inject(&FaultPlan {
            kernel_fault_rate: 0.0,
            events: vec![FaultEvent {
                at: SimTime::from_micros(300),
                kind: FaultKind::NodeCrash(0),
            }],
        });
        c.run_to_idle();
        let done = c.drain_completions();
        let failed = c.drain_failures();
        assert_eq!(done.len() + failed.len(), 20, "every request accounted");
        assert!(!failed.is_empty(), "no replica left to absorb the crash");
        for f in &failed {
            assert_eq!(f.reason, FailureReason::NodeCrash);
            assert_eq!(f.request.model, id, "public id restored on failures");
        }
        let snap = c.metrics_snapshot().expect("metrics enabled");
        assert_eq!(snap.counter("requests_failed"), failed.len() as u64);
        assert_eq!(snap.counter("accounting_underflow"), 0);
        // Per-tenant SLO ledger: every lost request is booked against its
        // tenant under the node-crash reason.
        let crash_fails: u64 = snap
            .tenant_slo
            .iter()
            .flat_map(|(_, s)| s.failures.iter())
            .filter(|(r, _)| r == FailureReason::NodeCrash.as_str())
            .map(|&(_, n)| n)
            .sum();
        assert_eq!(crash_fails, failed.len() as u64);
        // Each terminal loss snapshots the router's flight ring into a
        // parseable post-mortem dump.
        let dumps = ServingSystem::take_postmortems(&mut c);
        assert_eq!(dumps.len(), failed.len());
        for d in &dumps {
            paella_telemetry::flight::validate_dump(d).expect("dump parses");
            assert!(d.contains("trigger: replica-loss"), "{d}");
            assert!(d.contains("event:"), "ring must hold recent events: {d}");
        }
        assert!(
            ServingSystem::take_postmortems(&mut c).is_empty(),
            "dumps drain on take"
        );
    }

    #[test]
    fn crashed_node_recovers_through_a_full_cold_start() {
        use paella_sim::FaultEvent;
        let mut c = cluster(2, RoutingPolicy::Jsq);
        let m = synthetic::uniform_job("rec", 4, SimDuration::from_micros(150), 64);
        let id = c.register_model(&m);
        c.enable_telemetry();
        submit_n(&mut c, id, 24, 100);
        c.inject(&FaultPlan {
            kernel_fault_rate: 0.0,
            events: vec![
                FaultEvent {
                    at: SimTime::from_micros(300),
                    kind: FaultKind::NodeCrash(1),
                },
                FaultEvent {
                    at: SimTime::from_micros(700),
                    kind: FaultKind::NodeRecover(1),
                },
            ],
        });
        c.run_to_idle();
        let done = c.drain_completions();
        let failed = c.drain_failures();
        assert_eq!(done.len() + failed.len(), 24);
        assert!(failed.is_empty(), "replica + recovery lose nothing");
        assert!(!c.node_crashed(1), "recovery clears the crash flag");
        assert_eq!(
            c.node_state(1),
            NodeState::Online,
            "recovered node warms back to serving"
        );
        let snap = c.metrics_snapshot().expect("metrics enabled");
        assert_eq!(snap.counter("node_crashes"), 1);
        assert_eq!(snap.counter("node_recoveries"), 1);
        assert_eq!(snap.counter("accounting_underflow"), 0);
    }

    #[test]
    fn client_disconnect_cancels_cluster_wide() {
        use paella_sim::FaultEvent;
        let mut c = cluster(2, RoutingPolicy::Jsq);
        let m = synthetic::uniform_job("dc", 4, SimDuration::from_micros(150), 64);
        let id = c.register_model(&m);
        c.enable_telemetry();
        // submit_n spreads clients 0..4 round-robin over 32 requests.
        submit_n(&mut c, id, 32, 100);
        c.inject(&FaultPlan {
            kernel_fault_rate: 0.0,
            events: vec![FaultEvent {
                at: SimTime::from_micros(500),
                kind: FaultKind::ClientDisconnect(2),
            }],
        });
        c.run_to_idle();
        let done = c.drain_completions();
        let failed = c.drain_failures();
        assert_eq!(done.len() + failed.len(), 32, "every request accounted");
        assert!(
            !failed.is_empty(),
            "mid-run disconnect must cancel something"
        );
        for f in &failed {
            assert_eq!(f.reason, FailureReason::Disconnected);
            assert_eq!(f.request.client, ClientId(2));
        }
        for d in &done {
            assert!(
                !(d.request.client == ClientId(2)
                    && d.request.submitted_at >= SimTime::from_micros(500)),
                "post-disconnect submissions from the client must be refused"
            );
        }
        let snap = c.metrics_snapshot().expect("metrics enabled");
        assert_eq!(snap.counter("client_disconnects"), 1);
        assert_eq!(snap.counter("accounting_underflow"), 0);
    }

    #[test]
    fn fault_injection_replays_bit_for_bit() {
        use paella_sim::FaultSpec;
        let run = |fault_seed: u64| {
            let mut c = Cluster::new(
                DeviceConfig::tesla_t4(),
                3,
                ClusterConfig {
                    seed: 21,
                    ..ClusterConfig::with_policy(RoutingPolicy::LeastRemainingWork)
                },
            );
            let m = synthetic::uniform_job("det", 5, SimDuration::from_micros(180), 64);
            let id = c.register_model(&m);
            submit_n(&mut c, id, 80, 30);
            let plan = FaultSpec {
                kernel_fault_rate: 0.05,
                node_crashes: 1,
                nodes: 3,
                window_start: SimTime::from_micros(200),
                window_end: SimTime::from_micros(1_500),
                recovery_after: Some(SimDuration::from_micros(800)),
                client_disconnects: 1,
                clients: 4,
            }
            .generate(fault_seed);
            c.inject(&plan);
            c.run_to_idle();
            let mut lines: Vec<String> = c
                .drain_completions()
                .iter()
                .map(|d| format!("ok {}:{}", d.request.submitted_at, d.client_visible_at))
                .chain(c.drain_failures().iter().map(|f| {
                    format!(
                        "fail {}:{}:{}",
                        f.request.submitted_at,
                        f.at,
                        f.reason.as_str()
                    )
                }))
                .collect();
            lines.sort();
            lines
        };
        assert_eq!(run(7), run(7), "same fault seed must replay exactly");
        assert_ne!(run(7), run(8), "different fault seed must differ");
    }

    #[test]
    fn load_signal_aggregates_and_empties() {
        let mut c = cluster(2, RoutingPolicy::Jsq);
        let m = synthetic::uniform_job("ls", 4, SimDuration::from_micros(100), 32);
        let id = c.register_model(&m);
        submit_n(&mut c, id, 10, 1);
        let s = c.load_signal();
        assert_eq!(s.outstanding(), 10, "all submitted requests visible");
        c.run_to_idle();
        let s = c.load_signal();
        assert_eq!(s.outstanding(), 0);
        assert_eq!(s.remaining_work, SimDuration::ZERO);
    }
}
