//! Graph-level intermediate representation.
//!
//! A deliberately TVM/Relay-flavoured IR: a model is a DAG of tensor
//! operators with static shapes. The reproduction does not execute real
//! arithmetic — what matters for scheduling research is each operator's
//! *kernel shape* (grid/block/resources) and *cost* (FLOPs / bytes moved),
//! which lowering derives from this IR.

use std::fmt;

/// A tensor shape in NCHW order with N implicit (batch handled at lowering).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Shape {
    /// Channels.
    pub c: u32,
    /// Height.
    pub h: u32,
    /// Width.
    pub w: u32,
}

impl Shape {
    /// Creates a CHW shape.
    pub const fn chw(c: u32, h: u32, w: u32) -> Self {
        Shape { c, h, w }
    }

    /// A flat vector of `n` features (C = n, H = W = 1).
    pub const fn flat(n: u32) -> Self {
        Shape { c: n, h: 1, w: 1 }
    }

    /// Number of elements.
    pub fn elems(&self) -> u64 {
        u64::from(self.c) * u64::from(self.h) * u64::from(self.w)
    }

    /// Size in bytes as float32.
    pub fn bytes(&self) -> u64 {
        self.elems() * 4
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}x{}", self.c, self.h, self.w)
    }
}

/// Node identifier within a [`Graph`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct NodeId(pub u32);

/// Tensor operators.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum Op {
    /// Model input placeholder.
    Input,
    /// 2-D convolution: `out_channels`, square `kernel`, `stride`, `pad`.
    Conv2d {
        /// Output channels.
        out_channels: u32,
        /// Kernel side length.
        kernel: u32,
        /// Stride.
        stride: u32,
        /// Symmetric padding.
        pad: u32,
    },
    /// Depthwise 2-D convolution (MobileNet-style).
    DepthwiseConv2d {
        /// Kernel side length.
        kernel: u32,
        /// Stride.
        stride: u32,
        /// Symmetric padding.
        pad: u32,
    },
    /// Fully connected layer with `units` outputs.
    Dense {
        /// Output features.
        units: u32,
    },
    /// Max pooling with square window.
    MaxPool {
        /// Window side length.
        size: u32,
        /// Stride.
        stride: u32,
    },
    /// Average pooling with square window.
    AvgPool {
        /// Window side length.
        size: u32,
        /// Stride.
        stride: u32,
    },
    /// Global average pooling to 1×1.
    GlobalAvgPool,
    /// Batch normalization (eltwise scale/shift at inference).
    BatchNorm,
    /// ReLU activation.
    Relu,
    /// Elementwise addition of two inputs (residual connections).
    Add,
    /// Channel-wise concatenation of all inputs.
    Concat,
    /// Softmax over the flattened features.
    Softmax,
}

impl Op {
    /// Whether this op is elementwise and thus fusable into its producer.
    pub fn is_elementwise(&self) -> bool {
        matches!(self, Op::BatchNorm | Op::Relu)
    }
}

/// One node of the dataflow graph.
#[derive(Clone, Debug)]
pub struct Node {
    /// This node's id (equals its index in [`Graph::nodes`]).
    pub id: NodeId,
    /// The operator.
    pub op: Op,
    /// Producer nodes, in operator-defined order.
    pub inputs: Vec<NodeId>,
    /// Inferred output shape.
    pub shape: Shape,
}

/// A dataflow graph under construction or ready for lowering.
///
/// Nodes are stored in topological order by construction: an input of a node
/// must already exist when the node is added.
#[derive(Clone, Debug, Default)]
pub struct Graph {
    /// Topologically ordered nodes.
    pub nodes: Vec<Node>,
}

/// Errors raised while building a graph.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GraphError {
    /// Referenced input does not exist yet.
    UnknownInput(NodeId),
    /// Operator received the wrong number of inputs.
    Arity {
        /// The offending operator (via `Debug`).
        op: String,
        /// Inputs provided.
        got: usize,
        /// Inputs required.
        want: &'static str,
    },
    /// Shapes are incompatible (e.g. `Add` of different shapes).
    ShapeMismatch(String),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::UnknownInput(id) => write!(f, "unknown input node {id:?}"),
            GraphError::Arity { op, got, want } => {
                write!(f, "op {op} wants {want} inputs, got {got}")
            }
            GraphError::ShapeMismatch(m) => write!(f, "shape mismatch: {m}"),
        }
    }
}

impl std::error::Error for GraphError {}

impl Graph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Graph::default()
    }

    /// Adds an input placeholder of the given shape.
    pub fn input(&mut self, shape: Shape) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node {
            id,
            op: Op::Input,
            inputs: Vec::new(),
            shape,
        });
        id
    }

    /// Adds an operator node, inferring its output shape.
    pub fn add(&mut self, op: Op, inputs: &[NodeId]) -> Result<NodeId, GraphError> {
        for &i in inputs {
            if i.0 as usize >= self.nodes.len() {
                return Err(GraphError::UnknownInput(i));
            }
        }
        let shape = self.infer_shape(op, inputs)?;
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node {
            id,
            op,
            inputs: inputs.to_vec(),
            shape,
        });
        Ok(id)
    }

    /// Shape of a node.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn shape(&self, id: NodeId) -> Shape {
        self.nodes[id.0 as usize].shape
    }

    /// Number of nodes (the paper's "nodes in the computation graph").
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the graph is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    fn arity_err(op: Op, got: usize, want: &'static str) -> GraphError {
        GraphError::Arity {
            op: format!("{op:?}"),
            got,
            want,
        }
    }

    fn infer_shape(&self, op: Op, inputs: &[NodeId]) -> Result<Shape, GraphError> {
        let one = |gr: &Graph| -> Result<Shape, GraphError> {
            if inputs.len() != 1 {
                return Err(Self::arity_err(op, inputs.len(), "1"));
            }
            Ok(gr.shape(inputs[0]))
        };
        match op {
            Op::Input => Err(GraphError::Arity {
                op: "Input".to_string(),
                got: inputs.len(),
                want: "use Graph::input",
            }),
            Op::Conv2d {
                out_channels,
                kernel,
                stride,
                pad,
            } => {
                let s = one(self)?;
                let h = conv_out(s.h, kernel, stride, pad);
                let w = conv_out(s.w, kernel, stride, pad);
                if h == 0 || w == 0 {
                    return Err(GraphError::ShapeMismatch(format!(
                        "conv {kernel}x{kernel}/{stride} collapses {s}"
                    )));
                }
                Ok(Shape::chw(out_channels, h, w))
            }
            Op::DepthwiseConv2d {
                kernel,
                stride,
                pad,
            } => {
                let s = one(self)?;
                Ok(Shape::chw(
                    s.c,
                    conv_out(s.h, kernel, stride, pad),
                    conv_out(s.w, kernel, stride, pad),
                ))
            }
            Op::Dense { units } => {
                let _ = one(self)?;
                Ok(Shape::flat(units))
            }
            Op::MaxPool { size, stride } | Op::AvgPool { size, stride } => {
                let s = one(self)?;
                Ok(Shape::chw(
                    s.c,
                    pool_out(s.h, size, stride),
                    pool_out(s.w, size, stride),
                ))
            }
            Op::GlobalAvgPool => {
                let s = one(self)?;
                Ok(Shape::chw(s.c, 1, 1))
            }
            Op::BatchNorm | Op::Relu | Op::Softmax => one(self),
            Op::Add => {
                if inputs.len() != 2 {
                    return Err(Self::arity_err(op, inputs.len(), "2"));
                }
                let a = self.shape(inputs[0]);
                let b = self.shape(inputs[1]);
                if a != b {
                    return Err(GraphError::ShapeMismatch(format!("add {a} vs {b}")));
                }
                Ok(a)
            }
            Op::Concat => {
                if inputs.len() < 2 {
                    return Err(Self::arity_err(op, inputs.len(), "2+"));
                }
                let first = self.shape(inputs[0]);
                let mut c = 0;
                for &i in inputs {
                    let s = self.shape(i);
                    if (s.h, s.w) != (first.h, first.w) {
                        return Err(GraphError::ShapeMismatch(format!(
                            "concat spatial {s} vs {first}"
                        )));
                    }
                    c += s.c;
                }
                Ok(Shape::chw(c, first.h, first.w))
            }
        }
    }
}

fn conv_out(dim: u32, kernel: u32, stride: u32, pad: u32) -> u32 {
    ((dim + 2 * pad).saturating_sub(kernel)) / stride.max(1) + 1
}

fn pool_out(dim: u32, size: u32, stride: u32) -> u32 {
    (dim.saturating_sub(size)) / stride.max(1) + 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv_shape_inference() {
        let mut g = Graph::new();
        let x = g.input(Shape::chw(3, 224, 224));
        let c = g
            .add(
                Op::Conv2d {
                    out_channels: 64,
                    kernel: 7,
                    stride: 2,
                    pad: 3,
                },
                &[x],
            )
            .unwrap();
        assert_eq!(g.shape(c), Shape::chw(64, 112, 112));
    }

    #[test]
    fn pool_and_global_pool() {
        let mut g = Graph::new();
        let x = g.input(Shape::chw(64, 112, 112));
        let p = g.add(Op::MaxPool { size: 2, stride: 2 }, &[x]).unwrap();
        assert_eq!(g.shape(p), Shape::chw(64, 56, 56));
        let gp = g.add(Op::GlobalAvgPool, &[p]).unwrap();
        assert_eq!(g.shape(gp), Shape::chw(64, 1, 1));
    }

    #[test]
    fn dense_flattens() {
        let mut g = Graph::new();
        let x = g.input(Shape::chw(512, 1, 1));
        let d = g.add(Op::Dense { units: 1000 }, &[x]).unwrap();
        assert_eq!(g.shape(d), Shape::flat(1000));
    }

    #[test]
    fn add_requires_matching_shapes() {
        let mut g = Graph::new();
        let a = g.input(Shape::chw(64, 56, 56));
        let b = g.input(Shape::chw(64, 28, 28));
        assert!(matches!(
            g.add(Op::Add, &[a, b]),
            Err(GraphError::ShapeMismatch(_))
        ));
        let c = g.input(Shape::chw(64, 56, 56));
        assert!(g.add(Op::Add, &[a, c]).is_ok());
    }

    #[test]
    fn concat_sums_channels() {
        let mut g = Graph::new();
        let a = g.input(Shape::chw(64, 28, 28));
        let b = g.input(Shape::chw(96, 28, 28));
        let c = g.add(Op::Concat, &[a, b]).unwrap();
        assert_eq!(g.shape(c), Shape::chw(160, 28, 28));
    }

    #[test]
    fn concat_rejects_mismatched_spatial() {
        let mut g = Graph::new();
        let a = g.input(Shape::chw(64, 28, 28));
        let b = g.input(Shape::chw(64, 14, 14));
        assert!(g.add(Op::Concat, &[a, b]).is_err());
    }

    #[test]
    fn unknown_input_rejected() {
        let mut g = Graph::new();
        assert_eq!(
            g.add(Op::Relu, &[NodeId(5)]),
            Err(GraphError::UnknownInput(NodeId(5)))
        );
    }

    #[test]
    fn arity_checked() {
        let mut g = Graph::new();
        let a = g.input(Shape::chw(1, 1, 1));
        assert!(matches!(
            g.add(Op::Add, &[a]),
            Err(GraphError::Arity { .. })
        ));
        assert!(matches!(
            g.add(Op::Concat, &[a]),
            Err(GraphError::Arity { .. })
        ));
    }

    #[test]
    fn depthwise_preserves_channels() {
        let mut g = Graph::new();
        let x = g.input(Shape::chw(32, 112, 112));
        let d = g
            .add(
                Op::DepthwiseConv2d {
                    kernel: 3,
                    stride: 1,
                    pad: 1,
                },
                &[x],
            )
            .unwrap();
        assert_eq!(g.shape(d), Shape::chw(32, 112, 112));
    }

    #[test]
    fn shape_helpers() {
        let s = Shape::chw(3, 224, 224);
        assert_eq!(s.elems(), 3 * 224 * 224);
        assert_eq!(s.bytes(), 3 * 224 * 224 * 4);
        assert_eq!(format!("{s}"), "3x224x224");
    }
}
