//! Brute-force invariant oracles for the dispatcher's bookkeeping.
//!
//! The production structures ([`Waitlist`], [`OccupancyTracker`]) maintain
//! their answers *incrementally* — sorted unreleased-sequence sets, cached
//! counters, per-SM mirrors. Each oracle here re-derives the same answer by
//! the most naive computation possible (full rescans, O(n²) edge
//! enumeration, Kahn's algorithm instead of targeted DFS) so that a
//! property test disagreeing between the two implementations pinpoints a
//! bookkeeping bug rather than a shared blind spot.
//!
//! * [`StreamOracle`] — CUDA stream-ordering semantics (Fig. 7, §4.2):
//!   in-stream FIFO, default↔blocking serialization, explicit
//!   `cudaStreamWaitEvent` deps, and issue-time deadlock (wait-cycle)
//!   rejection.
//! * [`ConservationOracle`] — Table-1 block conservation: every launched
//!   block is exactly one of unplaced / resident / completed, and no SM ever
//!   exceeds its static limits.
//! * [`KvOracle`] — the LLM tier's KV-page conservation, replayed from
//!   `KvAlloc` trace events: per-job and pool-wide residency re-derived
//!   from scratch, with double-free and leak detection.
//!
//! [`Waitlist`]: paella_core::Waitlist
//! [`OccupancyTracker`]: paella_core::OccupancyTracker

use std::collections::HashMap;
use std::collections::HashSet;

use paella_core::{OccupancyTracker, StreamKind};
use paella_gpu::{BlockFootprint, SmLimits, SmUsage};

/// One recorded operation in the [`StreamOracle`].
#[derive(Clone, Debug)]
struct Op {
    stream: u32,
    kind: StreamKind,
    token: u64,
    seq: usize,
    deps: Vec<u64>,
    released: bool,
    retired: bool,
}

/// Brute-force reference implementation of CUDA stream semantics.
///
/// Mirrors the [`paella_core::Waitlist`] API closely enough for lockstep
/// property testing, but recomputes the active set and the wait graph from
/// scratch on every query.
#[derive(Default, Debug)]
pub struct StreamOracle {
    ops: Vec<Op>,
    released_tokens: HashSet<u64>,
}

impl StreamOracle {
    /// Creates an empty oracle.
    pub fn new() -> Self {
        StreamOracle::default()
    }

    /// Records an op issued on `stream` (of declared `kind`) with explicit
    /// dependencies `deps`. Returns whether the op is immediately active, or
    /// `Err(token)` if admitting it would close a wait cycle — in which case
    /// the oracle state is unchanged.
    pub fn push(
        &mut self,
        stream: u32,
        kind: StreamKind,
        token: u64,
        deps: &[u64],
    ) -> Result<bool, u64> {
        let seq = self.ops.len();
        self.ops.push(Op {
            stream,
            kind,
            token,
            seq,
            deps: deps.to_vec(),
            released: false,
            retired: false,
        });
        if self.has_wait_cycle() {
            self.ops.pop();
            return Err(token);
        }
        Ok(self.is_active(self.ops.len() - 1))
    }

    /// Every unreleased op index that op `i` waits on — all edges of the
    /// waits-on relation, with no transitivity shortcuts:
    ///
    /// * every earlier unreleased op on the same stream (FIFO);
    /// * every earlier unreleased op across the default↔blocking
    ///   serialization;
    /// * every unsatisfied explicit dep that currently names an unreleased
    ///   op (last push wins for duplicate tokens, incl. a self-loop for a
    ///   self-dependency).
    fn waits_on(&self, i: usize) -> Vec<usize> {
        let op = &self.ops[i];
        let mut out = Vec::new();
        let mut by_token: HashMap<u64, usize> = HashMap::new();
        for (j, o) in self.ops.iter().enumerate() {
            if !o.released {
                by_token.insert(o.token, j);
            }
        }
        for (j, o) in self.ops.iter().enumerate() {
            if j == i || o.released || o.seq >= op.seq {
                continue;
            }
            if o.stream == op.stream {
                out.push(j);
                continue;
            }
            let serialized = matches!(
                (op.kind, o.kind),
                (StreamKind::Default, StreamKind::Blocking)
                    | (StreamKind::Blocking, StreamKind::Default)
            );
            if serialized {
                out.push(j);
            }
        }
        for d in &op.deps {
            if self.released_tokens.contains(d) {
                continue;
            }
            if let Some(&j) = by_token.get(d) {
                if !out.contains(&j) {
                    out.push(j);
                }
            }
        }
        out
    }

    /// Whether the waits-on graph over unreleased ops has any cycle, by
    /// Kahn's algorithm. Since every push is checked, the pre-push state is
    /// acyclic, so any cycle found passes through the newest op.
    fn has_wait_cycle(&self) -> bool {
        let live: Vec<usize> = (0..self.ops.len())
            .filter(|&i| !self.ops[i].released)
            .collect();
        let mut indeg: HashMap<usize, usize> = live.iter().map(|&i| (i, 0)).collect();
        let mut waiters: HashMap<usize, Vec<usize>> = HashMap::new();
        for &i in &live {
            for j in self.waits_on(i) {
                *indeg.get_mut(&i).expect("live index") += 1;
                waiters.entry(j).or_default().push(i);
            }
        }
        let mut queue: Vec<usize> = live.iter().copied().filter(|i| indeg[i] == 0).collect();
        let mut removed = 0usize;
        while let Some(j) = queue.pop() {
            removed += 1;
            for &i in waiters.get(&j).into_iter().flatten() {
                let d = indeg.get_mut(&i).expect("live index");
                *d -= 1;
                if *d == 0 {
                    queue.push(i);
                }
            }
        }
        removed != live.len()
    }

    fn is_active(&self, i: usize) -> bool {
        !self.ops[i].released
            && self.waits_on(i).is_empty()
            && self.ops[i]
                .deps
                .iter()
                .all(|d| self.released_tokens.contains(d))
    }

    /// The active token set, in stream-id order (matching
    /// [`paella_core::Waitlist::active`]).
    pub fn active(&self) -> Vec<u64> {
        let mut streams: Vec<u32> = self
            .ops
            .iter()
            .filter(|o| !o.retired)
            .map(|o| o.stream)
            .collect();
        streams.sort_unstable();
        streams.dedup();
        let mut out = Vec::new();
        for s in streams {
            let front = (0..self.ops.len())
                .filter(|&i| self.ops[i].stream == s && !self.ops[i].released)
                .min_by_key(|&i| self.ops[i].seq);
            if let Some(i) = front {
                if self.is_active(i) {
                    out.push(self.ops[i].token);
                }
            }
        }
        out
    }

    /// Releases the front unreleased op holding `token`, returning tokens
    /// that became active as a result.
    ///
    /// # Panics
    ///
    /// Panics if no unreleased op holds `token`.
    pub fn release(&mut self, token: u64) -> Vec<u64> {
        let before = self.active();
        let i = (0..self.ops.len())
            .filter(|&i| !self.ops[i].released && self.ops[i].token == token)
            .min_by_key(|&i| self.ops[i].seq)
            .expect("oracle: release of unknown token");
        self.ops[i].released = true;
        self.released_tokens.insert(token);
        self.active()
            .into_iter()
            .filter(|t| !before.contains(t))
            .collect()
    }

    /// Retires a previously released op holding `token`.
    ///
    /// # Panics
    ///
    /// Panics if no released-but-unretired op holds `token`.
    pub fn retire(&mut self, token: u64) {
        let i = (0..self.ops.len())
            .filter(|&i| self.ops[i].released && !self.ops[i].retired && self.ops[i].token == token)
            .min_by_key(|&i| self.ops[i].seq)
            .expect("oracle: retire of unknown token");
        self.ops[i].retired = true;
    }

    /// Releases and retires in one step, mirroring
    /// [`paella_core::Waitlist::complete`].
    pub fn complete(&mut self, token: u64) -> Vec<u64> {
        let newly = self.release(token);
        self.retire(token);
        newly
    }

    /// Ops still tracked (released-but-running included).
    pub fn len(&self) -> usize {
        self.ops.iter().filter(|o| !o.retired).count()
    }

    /// Whether no tracked ops remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Ground truth for one launched kernel in the [`ConservationOracle`].
#[derive(Clone, Debug)]
struct OKernel {
    footprint: BlockFootprint,
    total: u32,
    placed: u32,
    completed: u32,
    per_sm: HashMap<u8, u32>,
}

/// Ground-truth block accounting for [`OccupancyTracker`] under a
/// *well-formed* event stream (placements fit, completions only complete
/// placed blocks). Feeding it a malformed event panics — the oracle defines
/// what the hardware could legally report, while the tracker must merely
/// stay safe (see [`ConservationOracle::check_safety`]) when reports are
/// lost or corrupted.
#[derive(Debug)]
pub struct ConservationOracle {
    num_sms: u32,
    limits: SmLimits,
    kernels: HashMap<u32, OKernel>,
}

impl ConservationOracle {
    /// Creates an oracle for a device with `num_sms` SMs of the given limits.
    pub fn new(num_sms: u32, limits: SmLimits) -> Self {
        ConservationOracle {
            num_sms,
            limits,
            kernels: HashMap::new(),
        }
    }

    /// Records a kernel launch.
    ///
    /// # Panics
    ///
    /// Panics on a duplicate uid.
    pub fn on_launch(&mut self, uid: u32, footprint: BlockFootprint, blocks: u32) {
        let prev = self.kernels.insert(
            uid,
            OKernel {
                footprint,
                total: blocks,
                placed: 0,
                completed: 0,
                per_sm: HashMap::new(),
            },
        );
        assert!(prev.is_none(), "oracle: kernel {uid} launched twice");
    }

    /// Records `g` blocks of `uid` being placed on `sm`.
    ///
    /// # Panics
    ///
    /// Panics if the placement is malformed: unknown kernel, more blocks
    /// than remain unplaced, or more than fit on the SM.
    pub fn on_placement(&mut self, sm: u8, uid: u32, g: u16) {
        let usage = self.sm_usage(sm);
        let k = self
            .kernels
            .get_mut(&uid)
            .expect("oracle: placement for unknown kernel");
        let g = u32::from(g);
        assert!(
            g <= k.total - k.placed,
            "oracle: placing {g} blocks but only {} unplaced",
            k.total - k.placed
        );
        assert!(
            g <= usage.fit_count(&k.footprint, &self.limits),
            "oracle: placement exceeds SM {sm} capacity"
        );
        k.placed += g;
        *k.per_sm.entry(sm).or_insert(0) += g;
    }

    /// Records `g` blocks of `uid` finishing on `sm`. The kernel is dropped
    /// once all its blocks completed, mirroring the tracker.
    ///
    /// # Panics
    ///
    /// Panics if more blocks complete on `sm` than were placed there.
    pub fn on_completion(&mut self, sm: u8, uid: u32, g: u16) {
        let k = self
            .kernels
            .get_mut(&uid)
            .expect("oracle: completion for unknown kernel");
        let g = u32::from(g);
        let on_sm = k.per_sm.entry(sm).or_insert(0);
        assert!(
            g <= *on_sm,
            "oracle: completing {g} blocks on SM {sm} but only {on_sm} resident"
        );
        *on_sm -= g;
        k.completed += g;
        if k.completed == k.total {
            self.kernels.remove(&uid);
        }
    }

    /// Records the host-side kernel-completed reconciliation: everything the
    /// kernel still holds is gone.
    pub fn on_kernel_completed(&mut self, uid: u32) {
        self.kernels.remove(&uid);
    }

    /// Ground-truth launched-but-unplaced block count.
    pub fn unplaced(&self) -> u64 {
        self.kernels
            .values()
            .map(|k| u64::from(k.total - k.placed))
            .sum()
    }

    /// Ground-truth resident block count.
    pub fn resident(&self) -> u64 {
        self.kernels
            .values()
            .flat_map(|k| k.per_sm.values())
            .map(|&n| u64::from(n))
            .sum()
    }

    /// Ground-truth usage of one SM, summed over all live kernels.
    pub fn sm_usage(&self, sm: u8) -> SmUsage {
        let mut u = SmUsage::default();
        for k in self.kernels.values() {
            let n = k.per_sm.get(&sm).copied().unwrap_or(0);
            if n > 0 {
                u.blocks += n;
                u.threads += n * k.footprint.threads;
                u.registers += n * k.footprint.registers();
                u.shmem += n * k.footprint.shmem;
            }
        }
        u
    }

    /// Compares the tracker's mirror against ground truth, field by field.
    ///
    /// # Errors
    ///
    /// Returns a description of the first divergence found.
    pub fn verify(&self, t: &OccupancyTracker) -> Result<(), String> {
        if t.unplaced_blocks() != self.unplaced() {
            return Err(format!(
                "unplaced: tracker {} != oracle {}",
                t.unplaced_blocks(),
                self.unplaced()
            ));
        }
        if t.resident_blocks() != self.resident() {
            return Err(format!(
                "resident: tracker {} != oracle {}",
                t.resident_blocks(),
                self.resident()
            ));
        }
        if t.tracked_kernels() != self.kernels.len() {
            return Err(format!(
                "tracked kernels: tracker {} != oracle {}",
                t.tracked_kernels(),
                self.kernels.len()
            ));
        }
        for sm in 0..self.num_sms {
            let (got, want) = (t.sm_usage(sm as u8), self.sm_usage(sm as u8));
            if got != want {
                return Err(format!("SM {sm} usage: tracker {got:?} != oracle {want:?}"));
            }
        }
        for (&uid, k) in &self.kernels {
            if t.fully_placed(uid) != (k.placed == k.total) {
                return Err(format!(
                    "fully_placed({uid}): tracker {} != oracle {}",
                    t.fully_placed(uid),
                    k.placed == k.total
                ));
            }
        }
        Self::check_safety(t, self.num_sms, &self.limits)
    }

    /// Safety bounds that must hold for *any* input, including lost,
    /// duplicated, or garbage notifications: no SM exceeds its static
    /// limits, and residency equals the per-SM block sum.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated bound.
    pub fn check_safety(
        t: &OccupancyTracker,
        num_sms: u32,
        limits: &SmLimits,
    ) -> Result<(), String> {
        let mut total_blocks = 0u64;
        for sm in 0..num_sms {
            let u = t.sm_usage(sm as u8);
            if u.blocks > limits.max_blocks
                || u.threads > limits.max_threads
                || u.registers > limits.max_registers
                || u.shmem > limits.max_shmem
            {
                return Err(format!("SM {sm} exceeds Table-1 limits: {u:?}"));
            }
            total_blocks += u64::from(u.blocks);
        }
        if total_blocks != t.resident_blocks() {
            return Err(format!(
                "residency desync: per-SM sum {total_blocks} != resident {}",
                t.resident_blocks()
            ));
        }
        Ok(())
    }
}

/// The journey-conservation oracle (DESIGN §12): re-checks, from the raw
/// trace, that every [`JobJourney`] event is internally exact and consistent
/// with its job's [`JobEnd`] — the naive transcription of the phase
/// decomposition's contract, with no tolerance:
///
/// * the eight journey phases sum *exactly* to the journey's JCT;
/// * a `JobEnd` exists for the same job, with identical JCT and identical
///   first-level phases (client, communication, framework, device);
/// * the four queue sub-phases sum exactly to `JobEnd`'s
///   `queuing_scheduling_ns` — the second-level split conserves the first;
/// * every ended job has exactly one journey, and vice versa.
///
/// Returns the number of journeys checked.
///
/// # Errors
///
/// Returns a description of the first violation found.
///
/// [`JobJourney`]: paella_telemetry::TraceEvent::JobJourney
/// [`JobEnd`]: paella_telemetry::TraceEvent::JobEnd
pub fn check_journeys(log: &paella_telemetry::TraceLog) -> Result<usize, String> {
    use paella_telemetry::TraceEvent;
    // (jct, client_send_recv, communication, queuing, framework, device)
    let mut ends: HashMap<u64, (u64, u64, u64, u64, u64, u64)> = HashMap::new();
    for e in &log.events {
        if let TraceEvent::JobEnd {
            job,
            jct_ns,
            client_send_recv_ns,
            communication_ns,
            queuing_scheduling_ns,
            framework_ns,
            device_ns,
            ..
        } = e.event
        {
            let prev = ends.insert(
                job,
                (
                    jct_ns,
                    client_send_recv_ns,
                    communication_ns,
                    queuing_scheduling_ns,
                    framework_ns,
                    device_ns,
                ),
            );
            if prev.is_some() {
                return Err(format!("job {job}: duplicate JobEnd"));
            }
        }
    }
    let mut checked = 0usize;
    for j in paella_telemetry::extract_journeys(log) {
        let b = j.breakdown;
        b.check_conservation()
            .map_err(|e| format!("job {}: {e}", j.job))?;
        b.check_device_split()
            .map_err(|e| format!("job {}: {e}", j.job))?;
        let Some(&(jct, csr, comm, queuing, fw, dev)) = ends.get(&j.job) else {
            return Err(format!("job {}: journey without a JobEnd", j.job));
        };
        ends.remove(&j.job);
        if b.jct_ns != jct {
            return Err(format!(
                "job {}: journey jct {} != JobEnd {jct}",
                j.job, b.jct_ns
            ));
        }
        let first_level = [
            ("client_send_recv", b.client_send_recv_ns, csr),
            ("communication", b.communication_ns, comm),
            ("framework", b.framework_ns, fw),
            ("device", b.device_ns, dev),
        ];
        for (name, got, want) in first_level {
            if got != want {
                return Err(format!(
                    "job {}: journey {name} {got} != JobEnd {want}",
                    j.job
                ));
            }
        }
        let queue_sum = b.retry_backoff_ns + b.queue_dep_ns + b.queue_occupancy_ns + b.queue_hol_ns;
        if queue_sum != queuing {
            return Err(format!(
                "job {}: queue sub-phases sum {queue_sum} != JobEnd queuing {queuing}",
                j.job
            ));
        }
        checked += 1;
    }
    if let Some(&job) = ends.keys().min() {
        return Err(format!("job {job}: JobEnd without a journey"));
    }
    Ok(checked)
}

/// Independent ledger for the LLM tier's paged KV-cache, replayed from
/// [`KvAlloc`] events. The production [`KvPool`] maintains its counters
/// incrementally; this oracle re-derives residency per job and pool-wide
/// from nothing but the event stream, so a divergence pinpoints which side
/// lost a page:
///
/// * every event's reported pool-wide `resident` must equal the ledger's;
/// * a free may never exceed the job's held pages (double-free / over-free
///   on cancel or preempt);
/// * lifetime conservation: `allocated == freed + resident` at every step.
///
/// [`KvAlloc`]: paella_telemetry::TraceEvent::KvAlloc
/// [`KvPool`]: https://docs.rs/paella-llm
#[derive(Default, Debug)]
pub struct KvOracle {
    held: HashMap<u64, u64>,
    resident: u64,
    allocated: u64,
    freed: u64,
}

impl KvOracle {
    /// Creates an empty ledger.
    pub fn new() -> Self {
        KvOracle::default()
    }

    /// Replays one [`KvAlloc`](paella_telemetry::TraceEvent::KvAlloc)
    /// event.
    ///
    /// # Errors
    ///
    /// Returns a description of the divergence: over-free of `job`, or the
    /// reported pool-wide residency disagreeing with the ledger.
    pub fn on_event(
        &mut self,
        job: u64,
        pages: u64,
        freed: bool,
        reported_resident: u64,
    ) -> Result<(), String> {
        if freed {
            let held = self.held.get(&job).copied().unwrap_or(0);
            if pages > held {
                return Err(format!(
                    "job {job}: freeing {pages} KV pages but only {held} held (double-free)"
                ));
            }
            if pages == held {
                self.held.remove(&job);
            } else {
                *self.held.get_mut(&job).expect("held > 0") -= pages;
            }
            self.resident -= pages;
            self.freed += pages;
        } else {
            *self.held.entry(job).or_insert(0) += pages;
            self.resident += pages;
            self.allocated += pages;
        }
        if reported_resident != self.resident {
            return Err(format!(
                "job {job}: pool reports {reported_resident} resident pages, ledger says {}",
                self.resident
            ));
        }
        if self.allocated != self.freed + self.resident {
            return Err(format!(
                "KV conservation violated in ledger: allocated {} != freed {} + resident {}",
                self.allocated, self.freed, self.resident
            ));
        }
        Ok(())
    }

    /// Pool-wide resident pages per the ledger.
    pub fn resident(&self) -> u64 {
        self.resident
    }

    /// Lifetime `(allocated, freed)` totals per the ledger — compare with
    /// the production pool's.
    pub fn lifetime(&self) -> (u64, u64) {
        (self.allocated, self.freed)
    }

    /// Checks that every page went home: no job holds KV and the pool is
    /// empty. Holds after any run that completed, failed, or cancelled all
    /// its requests.
    ///
    /// # Errors
    ///
    /// Returns the first job still holding pages, or the residual count.
    pub fn check_drained(&self) -> Result<(), String> {
        if let Some((&job, &pages)) = self.held.iter().min() {
            return Err(format!("job {job}: {pages} KV pages leaked"));
        }
        if self.resident != 0 {
            return Err(format!("{} KV pages resident with no owner", self.resident));
        }
        Ok(())
    }
}

/// Replays every [`KvAlloc`] event in `log` through a fresh [`KvOracle`]
/// and checks that the stream drains. Returns the number of events
/// replayed.
///
/// # Errors
///
/// Returns the first per-event divergence or the final leak.
///
/// [`KvAlloc`]: paella_telemetry::TraceEvent::KvAlloc
pub fn check_kv(log: &paella_telemetry::TraceLog) -> Result<usize, String> {
    use paella_telemetry::TraceEvent;
    let mut oracle = KvOracle::new();
    let mut replayed = 0usize;
    for e in &log.events {
        if let TraceEvent::KvAlloc {
            job,
            pages,
            freed,
            resident,
        } = e.event
        {
            oracle.on_event(job, pages, freed, resident)?;
            replayed += 1;
        }
    }
    oracle.check_drained()?;
    Ok(replayed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use paella_channels::Notification;
    use paella_core::{VStream, Waitlist};

    fn fp() -> BlockFootprint {
        BlockFootprint {
            threads: 128,
            regs_per_thread: 9,
            shmem: 0,
        }
    }

    #[test]
    fn oracle_reproduces_default_stream_serialization() {
        let mut o = StreamOracle::new();
        assert!(o.push(0, StreamKind::Default, 1, &[]).unwrap());
        assert!(!o.push(1, StreamKind::Blocking, 2, &[]).unwrap());
        assert_eq!(o.active(), vec![1]);
        assert_eq!(o.complete(1), vec![2]);
    }

    #[test]
    fn oracle_nonblocking_ignores_default() {
        let mut o = StreamOracle::new();
        assert!(o.push(0, StreamKind::Default, 1, &[]).unwrap());
        assert!(o.push(7, StreamKind::NonBlocking, 2, &[]).unwrap());
        assert_eq!(o.active(), vec![1, 2]);
    }

    #[test]
    fn oracle_rejects_two_op_cycle() {
        let mut o = StreamOracle::new();
        assert!(!o.push(1, StreamKind::Blocking, 1, &[2]).unwrap());
        assert_eq!(o.push(2, StreamKind::Blocking, 2, &[1]), Err(2));
        assert_eq!(o.len(), 1, "rejected op leaves no trace");
        assert_eq!(o.push(2, StreamKind::Blocking, 2, &[]), Ok(true));
    }

    #[test]
    fn oracle_rejects_self_dependency() {
        let mut o = StreamOracle::new();
        assert_eq!(o.push(1, StreamKind::Blocking, 7, &[7]), Err(7));
        assert!(o.is_empty());
    }

    #[test]
    fn oracle_agrees_with_waitlist_on_scripted_scenario() {
        // The Fig. 7 composite: blocking, default, blocking, plus a
        // cross-stream join — drained in activation order, both sides in
        // lockstep.
        let mut w = Waitlist::new();
        let mut o = StreamOracle::new();
        let script: [(u32, StreamKind, u64, &[u64]); 4] = [
            (1, StreamKind::Blocking, 1, &[]),
            (0, StreamKind::Default, 2, &[]),
            (2, StreamKind::Blocking, 3, &[]),
            (3, StreamKind::Blocking, 4, &[1, 3]),
        ];
        for &(s, kind, tok, deps) in &script {
            w.declare_stream(VStream(s), kind);
            let got = w.push_with_deps(VStream(s), tok, deps).unwrap();
            let want = o.push(s, kind, tok, deps).unwrap();
            assert_eq!(got, want, "push({tok}) activity");
            assert_eq!(w.active(), o.active());
        }
        for tok in [1u64, 2, 3, 4] {
            let s = VStream(script[tok as usize - 1].0);
            assert_eq!(w.complete(s, tok), o.complete(tok), "complete({tok})");
            assert_eq!(w.active(), o.active());
        }
        assert!(w.is_empty() && o.is_empty());
    }

    #[test]
    fn conservation_oracle_agrees_with_tracker() {
        let mut t = OccupancyTracker::new(4, SmLimits::TURING);
        let mut o = ConservationOracle::new(4, SmLimits::TURING);
        t.on_launch(1, fp(), 16);
        o.on_launch(1, fp(), 16);
        o.verify(&t).unwrap();
        for sm in 0..2u8 {
            t.on_notification(Notification::placement(sm, 1, 8));
            o.on_placement(sm, 1, 8);
            o.verify(&t).unwrap();
        }
        t.on_notification(Notification::completion(0, 1, 8));
        o.on_completion(0, 1, 8);
        o.verify(&t).unwrap();
        t.on_kernel_completed(1);
        o.on_kernel_completed(1);
        o.verify(&t).unwrap();
        assert_eq!(o.resident(), 0);
    }

    fn journey_log(queue_split: [u64; 4]) -> paella_telemetry::TraceLog {
        use paella_sim::SimTime;
        use paella_telemetry::{TraceEvent, TracedEvent};
        let queuing: u64 = queue_split.iter().sum();
        paella_telemetry::TraceLog {
            events: vec![
                TracedEvent {
                    at: SimTime::from_micros(5),
                    seq: 0,
                    event: TraceEvent::JobEnd {
                        job: 1,
                        client: 0,
                        jct_ns: 1_000 + queuing,
                        client_send_recv_ns: 100,
                        communication_ns: 200,
                        queuing_scheduling_ns: queuing,
                        framework_ns: 300,
                        device_ns: 400,
                    },
                },
                TracedEvent {
                    at: SimTime::from_micros(5),
                    seq: 1,
                    event: TraceEvent::JobJourney {
                        job: 1,
                        client: 0,
                        jct_ns: 1_000 + queuing,
                        client_send_recv_ns: 100,
                        communication_ns: 200,
                        framework_ns: 300,
                        device_ns: 400,
                        retry_backoff_ns: queue_split[0],
                        queue_dep_ns: queue_split[1],
                        queue_occupancy_ns: queue_split[2],
                        queue_hol_ns: queue_split[3],
                        device_prefill_ns: 400,
                        device_decode_ns: 0,
                    },
                },
            ],
        }
    }

    #[test]
    fn journey_oracle_accepts_exact_and_rejects_slack() {
        let good = journey_log([10, 20, 30, 40]);
        assert_eq!(check_journeys(&good), Ok(1));

        // Inflate one queue sub-phase: conservation breaks with no slack
        // allowed, and the error names the delta.
        let mut bad = journey_log([10, 20, 30, 40]);
        if let paella_telemetry::TraceEvent::JobJourney { queue_hol_ns, .. } =
            &mut bad.events[1].event
        {
            *queue_hol_ns += 1;
        }
        let err = check_journeys(&bad).unwrap_err();
        assert!(err.contains("delta"), "{err}");

        // A journey without its JobEnd is an orphan.
        let mut orphan = journey_log([0, 0, 0, 0]);
        orphan.events.remove(0);
        assert!(check_journeys(&orphan)
            .unwrap_err()
            .contains("without a JobEnd"));

        // And a JobEnd without its journey is a hole in coverage.
        let mut hole = journey_log([0, 0, 0, 0]);
        hole.events.remove(1);
        assert!(check_journeys(&hole)
            .unwrap_err()
            .contains("without a journey"));
    }

    #[test]
    fn conservation_oracle_rejects_malformed_placement() {
        let mut o = ConservationOracle::new(1, SmLimits::TURING);
        o.on_launch(1, fp(), 4);
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            o.on_placement(0, 1, 5);
        }));
        assert!(err.is_err(), "over-placement must panic");
    }
}
