//! Property-based tests for the waitlist, occupancy tracker, and schedulers.

use proptest::prelude::*;

use paella_channels::Notification;
use paella_core::{
    ClientId, FifoScheduler, JobId, JobInfo, OccupancyTracker, RrScheduler, Scheduler,
    SjfScheduler, SrptDeficitScheduler, VStream, Waitlist,
};
use paella_gpu::{BlockFootprint, SmLimits};
use paella_sim::{SimDuration, SimTime};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// For any set of single-stream jobs, the waitlist activates ops in
    /// strict issue order, one at a time.
    #[test]
    fn waitlist_single_stream_strict_order(n in 1usize..50) {
        let mut w = Waitlist::new();
        let s = VStream(1);
        for t in 0..n as u64 {
            let active = w.push(s, t).unwrap();
            prop_assert_eq!(active, t == 0, "only the first op starts active");
        }
        for t in 0..n as u64 {
            prop_assert_eq!(w.active(), vec![t]);
            let newly = w.complete(s, t);
            if t + 1 < n as u64 {
                prop_assert_eq!(newly, vec![t + 1]);
            } else {
                prop_assert!(newly.is_empty());
            }
        }
        prop_assert!(w.is_empty());
    }

    /// Across many blocking streams, at most one op per stream is active,
    /// and every op eventually activates exactly once.
    #[test]
    fn waitlist_multi_stream_liveness(
        ops in proptest::collection::vec(0u32..6, 1..80),
    ) {
        let mut w = Waitlist::new();
        let mut pushed: Vec<(VStream, u64)> = Vec::new();
        for (i, &s) in ops.iter().enumerate() {
            // Avoid stream 0 (default-stream serialization is tested
            // separately); streams 1..=6.
            let vs = VStream(s + 1);
            w.push(vs, i as u64).unwrap();
            pushed.push((vs, i as u64));
        }
        // At most one active per stream.
        let active = w.active();
        let mut streams_seen = std::collections::HashSet::new();
        for &t in &active {
            let (vs, _) = pushed[t as usize];
            prop_assert!(streams_seen.insert(vs), "two active ops on one stream");
        }
        // Drain: repeatedly complete the first active op.
        let mut completed = 0;
        while !w.is_empty() {
            let t = w.active()[0];
            let (vs, _) = pushed[t as usize];
            w.complete(vs, t);
            completed += 1;
            prop_assert!(completed <= ops.len(), "livelock");
        }
        prop_assert_eq!(completed, ops.len());
    }

    /// The occupancy tracker conserves blocks for arbitrary interleavings of
    /// kernels and per-SM placements.
    #[test]
    fn occupancy_conservation(
        kernels in proptest::collection::vec((1u32..64, 1u32..=8), 1..20),
    ) {
        let mut t = OccupancyTracker::new(40, SmLimits::TURING);
        let fp = BlockFootprint { threads: 128, regs_per_thread: 9, shmem: 0 };
        let mut total = 0u64;
        for (i, &(blocks, _)) in kernels.iter().enumerate() {
            t.on_launch(i as u32, fp, blocks);
            total += u64::from(blocks);
        }
        prop_assert_eq!(t.unplaced_blocks(), total);
        // Place and complete everything, 8 blocks per SM round-robin.
        for (i, &(blocks, per)) in kernels.iter().enumerate() {
            let mut left = blocks;
            let mut sm = (i % 40) as u8;
            while left > 0 {
                let g = left.min(per.min(8)) as u16;
                t.on_notification(Notification::placement(sm, i as u32, g));
                t.on_notification(Notification::completion(sm, i as u32, g));
                left -= u32::from(g);
                sm = (sm + 1) % 40;
            }
            prop_assert!(t.fully_placed(i as u32));
        }
        prop_assert_eq!(t.unplaced_blocks(), 0);
        prop_assert_eq!(t.resident_blocks(), 0);
        prop_assert_eq!(t.tracked_kernels(), 0);
    }

    /// Every scheduler only ever picks jobs that are currently ready, and
    /// picks none when all are blocked.
    #[test]
    fn schedulers_pick_only_ready(
        jobs in proptest::collection::vec((0u32..4, 1u64..10_000), 1..40),
        block_mask in proptest::collection::vec(any::<bool>(), 1..40),
    ) {
        let make: Vec<Box<dyn Scheduler>> = vec![
            Box::new(FifoScheduler::new()),
            Box::new(SjfScheduler::new()),
            Box::new(RrScheduler::new()),
            Box::new(SrptDeficitScheduler::new(Some(10.0))),
            Box::new(SrptDeficitScheduler::srpt_only()),
        ];
        for mut s in make {
            let mut ready = std::collections::HashSet::new();
            for (i, &(client, est)) in jobs.iter().enumerate() {
                s.job_ready(JobInfo {
                    job: JobId(i as u64),
                    client: ClientId(client),
                    arrival: SimTime::from_micros(i as u64),
                    total_estimate: SimDuration::from_micros(est),
                    remaining_estimate: SimDuration::from_micros(est),
                });
                ready.insert(JobId(i as u64));
            }
            for (i, &blocked) in block_mask.iter().enumerate() {
                if blocked && i < jobs.len() {
                    s.job_blocked(JobId(i as u64));
                    ready.remove(&JobId(i as u64));
                }
            }
            prop_assert_eq!(s.ready_len(), ready.len(), "{}", s.name());
            for _ in 0..5 {
                match s.pick_next() {
                    Some(j) => {
                        prop_assert!(ready.contains(&j), "{} picked blocked job", s.name());
                        s.on_dispatched(j);
                    }
                    None => prop_assert!(ready.is_empty(), "{} starved ready jobs", s.name()),
                }
            }
        }
    }

    /// The incrementally maintained `LoadSignal` remaining-work aggregate
    /// stays equal to the from-scratch O(jobs) recomputation across random
    /// ingest / kernel-completion / job-retire interleavings — including
    /// online profile refinements that reprice still-owed kernels — up to
    /// float summation-order rounding.
    #[test]
    fn incremental_load_signal_matches_scratch(
        seed in any::<u64>(),
        // (model choice, client, gap µs) per submitted request.
        reqs in proptest::collection::vec((0usize..3, 0u32..4, 0u64..400), 1..40),
        // Event-steps to advance between submission bursts.
        bursts in proptest::collection::vec(1usize..30, 1..6),
    ) {
        let mut d = paella_core::Dispatcher::new(
            paella_gpu::DeviceConfig::tesla_t4(),
            paella_channels::ChannelConfig::default(),
            Box::new(SrptDeficitScheduler::new(Some(2_000.0))),
            paella_core::DispatcherConfig::paella(),
            seed,
        );
        let models = [
            d.register_model(&paella_models::synthetic::fig2_job()),
            d.register_model(&paella_models::synthetic::tiny_model(
                SimDuration::from_micros(120),
            )),
            d.register_model(&paella_models::synthetic::uniform_job(
                "u", 5, SimDuration::from_micros(80), 8,
            )),
        ];
        let check = |d: &paella_core::Dispatcher| {
            let inc = d.inflight_work_incremental_us();
            let scratch = d.inflight_work_scratch_us();
            // The scratch oracle quantizes each job's remaining time to whole
            // nanoseconds (SimDuration), so allow 1 ns per in-flight job on
            // top of float summation-order rounding.
            let tol = 1e-6 * scratch.abs().max(1.0) + 1e-3 * (d.inflight() as f64 + 1.0);
            (inc, scratch, (inc - scratch).abs() <= tol)
        };
        let mut at = SimTime::ZERO;
        let mut pending = reqs.as_slice();
        for &steps in &bursts {
            let take = pending.len().div_ceil(bursts.len()).max(1).min(pending.len());
            let (now, rest) = pending.split_at(take);
            pending = rest;
            for &(m, client, gap) in now {
                at = at.saturating_add(SimDuration::from_micros(gap));
                d.submit(paella_core::InferenceRequest {
                    client: ClientId(client),
                    model: models[m % models.len()],
                    submitted_at: at,
                });
            }
            // Advance event-by-event, checking the invariant at every step —
            // this interleaves ingests, kernel completions, refinements, and
            // retires in whatever order the sim produces.
            for _ in 0..steps {
                let Some(t) = d.next_event_time() else { break };
                d.advance_until(t);
                let (inc, scratch, ok) = check(&d);
                prop_assert!(ok, "mid-run divergence: inc={inc} scratch={scratch}");
            }
        }
        d.run_to_idle();
        let (inc, scratch, ok) = check(&d);
        prop_assert!(ok, "post-run divergence: inc={inc} scratch={scratch}");
        // Fully idle ⇒ the aggregate snaps to exactly zero (no drift).
        prop_assert_eq!(d.inflight(), 0);
        prop_assert_eq!(d.inflight_work_incremental_us(), 0.0);
    }

    /// The scratch remaining-work oracle is bit-identical across dispatcher
    /// instances fed the same work. Each `HashMap` instance draws its own
    /// hash seed, so before the R6 fix the oracle summed jobs in
    /// per-instance order and two identical dispatchers could disagree in
    /// the low float bits; the sorted-key walk makes the sum order (and so
    /// the bits) a pure function of the workload.
    #[test]
    fn scratch_work_oracle_is_instance_order_invariant(
        seed in any::<u64>(),
        reqs in proptest::collection::vec((0u32..4, 0u64..300), 2..30),
        steps in 1usize..40,
    ) {
        let run = || {
            let mut d = paella_core::Dispatcher::new(
                paella_gpu::DeviceConfig::tesla_t4(),
                paella_channels::ChannelConfig::default(),
                Box::new(SrptDeficitScheduler::new(Some(2_000.0))),
                paella_core::DispatcherConfig::paella(),
                seed,
            );
            let model = d.register_model(&paella_models::synthetic::fig2_job());
            let mut at = SimTime::ZERO;
            for &(client, gap) in &reqs {
                at = at.saturating_add(SimDuration::from_micros(gap));
                d.submit(paella_core::InferenceRequest {
                    client: ClientId(client),
                    model,
                    submitted_at: at,
                });
            }
            for _ in 0..steps {
                let Some(t) = d.next_event_time() else { break };
                d.advance_until(t);
            }
            d.inflight_work_scratch_us()
        };
        let (a, b) = (run(), run());
        prop_assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "scratch oracle diverged across instances: {} vs {}",
            a,
            b
        );
    }

    /// SRPT picks the minimum-remaining ready job when fairness is off.
    #[test]
    fn srpt_picks_minimum(
        jobs in proptest::collection::vec(1u64..100_000, 1..50),
    ) {
        let mut s = SrptDeficitScheduler::srpt_only();
        for (i, &rem) in jobs.iter().enumerate() {
            s.job_ready(JobInfo {
                job: JobId(i as u64),
                client: ClientId(0),
                arrival: SimTime::ZERO,
                total_estimate: SimDuration::from_micros(rem),
                remaining_estimate: SimDuration::from_micros(rem),
            });
        }
        let picked = s.pick_next().unwrap();
        let min = jobs.iter().copied().min().unwrap();
        prop_assert_eq!(jobs[picked.0 as usize], min);
    }

    /// The dense per-job released bitset is observationally equivalent to
    /// the `HashSet<u64>` it replaced on the release path: same membership
    /// answers, same newly-inserted verdicts, same cardinality, under any
    /// interleaving of duplicate releases.
    #[test]
    fn released_bitset_matches_hashset(
        ops in 1usize..200,
        picks in proptest::collection::vec(0u64..200, 0..400),
    ) {
        use paella_core::ReleasedSet;
        let mut dense = ReleasedSet::with_capacity(ops);
        let mut reference: std::collections::HashSet<u64> = std::collections::HashSet::new();
        prop_assert!(dense.is_empty());
        for p in picks {
            let token = p % ops as u64;
            prop_assert_eq!(dense.contains(token), reference.contains(&token));
            let fresh = dense.insert(token);
            prop_assert_eq!(fresh, reference.insert(token), "insert verdicts diverge");
            prop_assert!(dense.contains(token));
            prop_assert_eq!(dense.len(), reference.len());
        }
        prop_assert_eq!(dense.is_empty(), reference.is_empty());
        for t in 0..ops as u64 {
            prop_assert_eq!(dense.contains(t), reference.contains(&t));
        }
    }
}
