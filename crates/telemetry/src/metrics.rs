//! The metrics registry: counters, gauges, log-bucketed histograms, and
//! periodic virtual-time series.
//!
//! All maps are `BTreeMap`s keyed on `&'static str` so iteration order — and
//! therefore every exported rendering — is deterministic.

use std::collections::BTreeMap;

use paella_sim::SimTime;

/// A power-of-two-bucketed histogram over `u64` values (typically
/// nanoseconds). Bucket `i` counts values whose bit length is `i`, i.e.
/// `[2^(i-1), 2^i)` for `i ≥ 1` and the single value `0` for bucket 0 —
/// 65 buckets cover the full domain, so no sample is ever out of range.
#[derive(Clone, Debug)]
pub struct LogHistogram {
    buckets: [u64; 65],
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        LogHistogram {
            buckets: [0; 65],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl LogHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one observation.
    pub fn push(&mut self, x: u64) {
        self.buckets[(64 - x.leading_zeros()) as usize] += 1;
        self.count += 1;
        self.sum += u128::from(x);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean observation, or 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Smallest observation, if any.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observation, if any.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Upper bound of the bucket containing the `q`-quantile (`0 ≤ q ≤ 1`) —
    /// a factor-of-two estimate, which is what log buckets buy.
    pub fn quantile_bound(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(Self::bucket_bound(i));
            }
        }
        Some(self.max)
    }

    /// Upper bound of bucket `i`. Bucket 64 holds values in
    /// `[2^63, u64::MAX]`, whose true bound 2^64 doesn't fit in `u64` —
    /// it saturates to `u64::MAX`.
    fn bucket_bound(i: usize) -> u64 {
        match i {
            0 => 0,
            64 => u64::MAX,
            _ => 1u64 << i,
        }
    }

    /// Non-empty buckets as `(bucket_upper_bound, count)`.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(i, &c)| (Self::bucket_bound(i), c))
    }
}

/// Per-tenant SLO ledger, accumulated on virtual time (DESIGN §12).
#[derive(Clone, Default, Debug)]
struct TenantSlo {
    completed: u64,
    slo_ok: u64,
    slo_miss: u64,
    burn_ns: u64,
    failures: BTreeMap<&'static str, u64>,
}

/// A registry of named metrics, all updated on virtual time.
#[derive(Clone, Default, Debug)]
pub struct MetricsRegistry {
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, u64>,
    histograms: BTreeMap<&'static str, LogHistogram>,
    series: BTreeMap<&'static str, Vec<(SimTime, u64)>>,
    tenant_slo: BTreeMap<u32, TenantSlo>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `n` to a monotonic counter.
    pub fn inc(&mut self, name: &'static str, n: u64) {
        *self.counters.entry(name).or_insert(0) += n;
    }

    /// Sets a gauge to its current value.
    pub fn gauge(&mut self, name: &'static str, value: u64) {
        self.gauges.insert(name, value);
    }

    /// Adds one observation to a log-bucketed histogram.
    pub fn observe(&mut self, name: &'static str, value: u64) {
        self.histograms.entry(name).or_default().push(value);
    }

    /// Appends one `(t, value)` sample to a virtual-time series.
    pub fn sample(&mut self, name: &'static str, at: SimTime, value: u64) {
        self.series.entry(name).or_default().push((at, value));
    }

    /// Records one completed request for `tenant`'s SLO ledger.
    /// `met_deadline` is whether the request finished within its deadline
    /// (requests with no deadline configured count as met); `burn_ns` is
    /// the error-budget burn — the virtual nanoseconds the completion ran
    /// *past* its deadline (0 when met).
    pub fn slo_complete(&mut self, tenant: u32, met_deadline: bool, burn_ns: u64) {
        let t = self.tenant_slo.entry(tenant).or_default();
        t.completed += 1;
        if met_deadline {
            t.slo_ok += 1;
        } else {
            t.slo_miss += 1;
            t.burn_ns = t.burn_ns.saturating_add(burn_ns);
        }
    }

    /// Records one terminally failed request for `tenant`'s SLO ledger,
    /// broken out by the failure's stable reason label
    /// (`FailureReason::as_str`).
    pub fn slo_fail(&mut self, tenant: u32, reason: &'static str) {
        *self
            .tenant_slo
            .entry(tenant)
            .or_default()
            .failures
            .entry(reason)
            .or_insert(0) += 1;
    }

    /// Current counter value (0 if never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Histogram by name, if any observation was recorded.
    pub fn histogram(&self, name: &str) -> Option<&LogHistogram> {
        self.histograms.get(name)
    }

    /// Series by name, if any sample was recorded.
    pub fn series(&self, name: &str) -> Option<&[(SimTime, u64)]> {
        self.series.get(name).map(Vec::as_slice)
    }

    /// Freezes the registry into a plain snapshot for reports.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counters
                .iter()
                .map(|(&k, &v)| (k.to_string(), v))
                .collect(),
            gauges: self
                .gauges
                .iter()
                .map(|(&k, &v)| (k.to_string(), v))
                .collect(),
            histograms: self
                .histograms
                .iter()
                .map(|(&k, h)| {
                    (
                        k.to_string(),
                        HistogramSummary {
                            count: h.count(),
                            mean: h.mean(),
                            min: h.min().unwrap_or(0),
                            max: h.max().unwrap_or(0),
                            p50_bound: h.quantile_bound(0.50).unwrap_or(0),
                            p99_bound: h.quantile_bound(0.99).unwrap_or(0),
                        },
                    )
                })
                .collect(),
            series: self
                .series
                .iter()
                .map(|(&k, v)| (k.to_string(), v.clone()))
                .collect(),
            tenant_slo: self
                .tenant_slo
                .iter()
                .map(|(&t, s)| {
                    (
                        t,
                        TenantSloSummary {
                            completed: s.completed,
                            slo_ok: s.slo_ok,
                            slo_miss: s.slo_miss,
                            burn_ns: s.burn_ns,
                            failures: s
                                .failures
                                .iter()
                                .map(|(&r, &n)| (r.to_string(), n))
                                .collect(),
                        },
                    )
                })
                .collect(),
        }
    }
}

/// Reduced view of one histogram.
#[derive(Clone, PartialEq, Debug)]
pub struct HistogramSummary {
    /// Observation count.
    pub count: u64,
    /// Mean value.
    pub mean: f64,
    /// Smallest observation.
    pub min: u64,
    /// Largest observation.
    pub max: u64,
    /// Factor-of-two upper bound on the median.
    pub p50_bound: u64,
    /// Factor-of-two upper bound on the 99th percentile.
    pub p99_bound: u64,
}

/// One tenant's frozen SLO ledger: deadline attainment and error-budget
/// burn on the virtual clock, with terminal failures broken out per
/// `FailureReason` label.
#[derive(Clone, Default, PartialEq, Debug)]
pub struct TenantSloSummary {
    /// Requests that completed (within deadline or not).
    pub completed: u64,
    /// Completions that met their deadline (or had none configured).
    pub slo_ok: u64,
    /// Completions past their deadline.
    pub slo_miss: u64,
    /// Error-budget burn: total virtual nanoseconds completions ran past
    /// their deadlines.
    pub burn_ns: u64,
    /// Terminal failures per stable reason label, reason-sorted.
    pub failures: Vec<(String, u64)>,
}

impl TenantSloSummary {
    /// Deadline attainment over completions, in basis points
    /// (0..=10000); 10000 when the tenant has no completions.
    pub fn attainment_bp(&self) -> u64 {
        (self.slo_ok * 10_000)
            .checked_div(self.completed)
            .unwrap_or(10_000)
    }
}

/// A frozen, ordered copy of a [`MetricsRegistry`] for `RunStats` and
/// reports.
#[derive(Clone, Default, PartialEq, Debug)]
pub struct MetricsSnapshot {
    /// Counter values, name-sorted.
    pub counters: Vec<(String, u64)>,
    /// Gauge values, name-sorted.
    pub gauges: Vec<(String, u64)>,
    /// Histogram summaries, name-sorted.
    pub histograms: Vec<(String, HistogramSummary)>,
    /// Time series, name-sorted.
    pub series: Vec<(String, Vec<(SimTime, u64)>)>,
    /// Per-tenant SLO ledgers, tenant-sorted.
    pub tenant_slo: Vec<(u32, TenantSloSummary)>,
}

impl MetricsSnapshot {
    /// Counter value by name (0 if absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(k, _)| k == name)
            .map(|&(_, v)| v)
            .unwrap_or(0)
    }

    /// Series by name.
    pub fn series(&self, name: &str) -> Option<&[(SimTime, u64)]> {
        self.series
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_slice())
    }

    /// One tenant's SLO ledger, if it recorded anything.
    pub fn tenant(&self, tenant: u32) -> Option<&TenantSloSummary> {
        self.tenant_slo
            .iter()
            .find(|&&(t, _)| t == tenant)
            .map(|(_, s)| s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_histogram_buckets_by_bit_length() {
        let mut h = LogHistogram::new();
        for x in [0u64, 1, 2, 3, 4, 1000, u64::MAX] {
            h.push(x);
        }
        assert_eq!(h.count(), 7);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(u64::MAX));
        let buckets: Vec<(u64, u64)> = h.iter().collect();
        // 0 → bucket 0; 1 → (0,1]; 2,3 → (1,4); 4 → 8-bound; 1000 → 1024.
        assert!(buckets.contains(&(0, 1)));
        assert!(buckets.contains(&(2, 1)));
        assert!(buckets.contains(&(4, 2)));
        assert!(buckets.contains(&(1024, 1)));
        let total: u64 = buckets.iter().map(|&(_, c)| c).sum();
        assert_eq!(total, 7, "no sample may fall outside the buckets");
    }

    #[test]
    fn quantile_bounds_are_monotone() {
        let mut h = LogHistogram::new();
        for x in 1..=1000u64 {
            h.push(x);
        }
        let p50 = h.quantile_bound(0.5).unwrap();
        let p99 = h.quantile_bound(0.99).unwrap();
        assert!(p50 <= p99);
        assert!((512..=1024).contains(&p50), "p50 bound {p50}");
        assert_eq!(LogHistogram::new().quantile_bound(0.5), None);
    }

    #[test]
    fn registry_roundtrip() {
        let mut m = MetricsRegistry::new();
        m.inc("jobs", 2);
        m.inc("jobs", 3);
        m.gauge("depth", 7);
        m.observe("jct_ns", 1500);
        m.sample("ready", SimTime::from_micros(1), 4);
        m.sample("ready", SimTime::from_micros(2), 6);
        assert_eq!(m.counter("jobs"), 5);
        assert_eq!(m.counter("missing"), 0);
        let snap = m.snapshot();
        assert_eq!(snap.counter("jobs"), 5);
        assert_eq!(snap.series("ready").unwrap().len(), 2);
        assert_eq!(snap.histograms[0].0, "jct_ns");
        assert_eq!(snap.histograms[0].1.count, 1);
    }

    #[test]
    fn histogram_percentile_edges() {
        // Empty: no quantiles at all.
        let empty = LogHistogram::new();
        assert_eq!(empty.quantile_bound(0.0), None);
        assert_eq!(empty.quantile_bound(0.99), None);
        assert_eq!(empty.iter().count(), 0);

        // Single sample: every quantile lands in its bucket.
        let mut single = LogHistogram::new();
        single.push(1000);
        assert_eq!(single.quantile_bound(0.0), Some(1024));
        assert_eq!(single.quantile_bound(0.5), Some(1024));
        assert_eq!(single.quantile_bound(1.0), Some(1024));

        // All samples in the overflow bucket (bit length 64): the bound
        // must saturate to u64::MAX, not wrap to 0.
        let mut overflow = LogHistogram::new();
        for _ in 0..3 {
            overflow.push(u64::MAX);
        }
        assert_eq!(overflow.quantile_bound(0.5), Some(u64::MAX));
        assert_eq!(overflow.quantile_bound(0.99), Some(u64::MAX));
        let buckets: Vec<(u64, u64)> = overflow.iter().collect();
        assert_eq!(buckets, vec![(u64::MAX, 3)]);

        // Exact bucket boundary: 2^k opens bucket k+1, so its bound is
        // 2^(k+1), not 2^k.
        let mut boundary = LogHistogram::new();
        boundary.push(8);
        assert_eq!(boundary.quantile_bound(0.5), Some(16));
        boundary.push(7);
        assert_eq!(boundary.quantile_bound(0.0), Some(8), "7 ∈ [4,8)");
    }

    #[test]
    fn snapshot_is_insertion_order_independent() {
        let mut a = MetricsRegistry::new();
        a.inc("x", 1);
        a.inc("y", 2);
        a.gauge("g", 3);
        a.observe("h", 10);
        a.sample("s", SimTime::from_micros(1), 5);
        a.slo_fail(2, "shed");
        a.slo_complete(1, true, 0);
        let mut b = MetricsRegistry::new();
        b.slo_complete(1, true, 0);
        b.slo_fail(2, "shed");
        b.sample("s", SimTime::from_micros(1), 5);
        b.observe("h", 10);
        b.gauge("g", 3);
        b.inc("y", 2);
        b.inc("x", 1);
        assert_eq!(a.snapshot(), b.snapshot());
    }

    #[test]
    fn slo_ledger_accounts_attainment_and_burn() {
        let mut m = MetricsRegistry::new();
        m.slo_complete(1, true, 0);
        m.slo_complete(1, false, 500);
        m.slo_complete(1, false, 700);
        m.slo_fail(1, "retry-budget-exhausted");
        m.slo_fail(1, "retry-budget-exhausted");
        m.slo_fail(1, "node-crash");
        let snap = m.snapshot();
        let t = snap.tenant(1).unwrap();
        assert_eq!(t.completed, 3);
        assert_eq!(t.slo_ok, 1);
        assert_eq!(t.slo_miss, 2);
        assert_eq!(t.burn_ns, 1200);
        assert_eq!(t.attainment_bp(), 3333);
        assert_eq!(
            t.failures,
            vec![
                ("node-crash".to_string(), 1),
                ("retry-budget-exhausted".to_string(), 2)
            ]
        );
        assert!(snap.tenant(9).is_none());
        assert_eq!(TenantSloSummary::default().attainment_bp(), 10_000);
    }
}
