//! Deterministic fault injection (DESIGN §11).
//!
//! A [`FaultPlan`] is the *entire* fault schedule for a run, fixed up front
//! from a seed. Two kinds of faults exist, with different determinism rules:
//!
//! * **Timed events** ([`FaultEvent`]) — node crashes/recoveries and client
//!   disconnects. These carry an absolute [`SimTime`] and are scheduled on
//!   the consumer's virtual-time `EventQueue` before the run starts, so they
//!   interleave with workload events under the queue's deterministic
//!   `(at, seq)` order. Same plan ⇒ identical injection points.
//! * **Rate faults** (`kernel_fault_rate`) — per-kernel execution faults.
//!   Kernels are too numerous and too dynamic to pre-schedule, so the
//!   consumer rolls a seeded Bernoulli per kernel completion instead
//!   (mirroring the GPU simulator's `notif_drop_rate`). The rolls happen in
//!   DES processing order, which is itself deterministic, so same seed ⇒
//!   identical fault sets.
//!
//! The plan is pure data: it does not know what a "node" or "client" is
//! beyond an index, and it holds no RNG of its own after generation.

use crate::rng::Xoshiro256pp;
use crate::time::{SimDuration, SimTime};

/// What a timed fault does when it fires.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FaultKind {
    /// Client `.0` disconnects: its queued and in-flight requests are
    /// cancelled and later submissions from it are refused.
    ClientDisconnect(u32),
    /// Node `.0` crashes: all queued and in-flight work on it is lost (the
    /// cluster frontend re-routes what it can) and the node goes offline.
    NodeCrash(u32),
    /// Node `.0` recovers from a crash and begins a cold start.
    NodeRecover(u32),
}

/// A timed fault: `kind` fires at absolute virtual time `at`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct FaultEvent {
    /// Absolute virtual time at which the fault fires.
    pub at: SimTime,
    /// What happens.
    pub kind: FaultKind,
}

/// A complete, deterministic fault schedule for one run.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    /// Probability that any given kernel completion is a fault (rolled by
    /// the dispatcher with its own seeded RNG, in DES order). `0.0` disables
    /// kernel faults.
    pub kernel_fault_rate: f64,
    /// Timed faults, sorted by `(at, generation index)`.
    pub events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// The empty plan: no faults of any kind.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Whether the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.kernel_fault_rate == 0.0 && self.events.is_empty()
    }
}

/// Parameters for [`FaultSpec::generate`]: a compact description of a fault
/// scenario that expands into a concrete [`FaultPlan`] under a seed.
#[derive(Clone, Copy, Debug)]
pub struct FaultSpec {
    /// Per-kernel fault probability (copied into the plan).
    pub kernel_fault_rate: f64,
    /// Number of node crashes to inject.
    pub node_crashes: u32,
    /// Number of nodes in the fleet (crash targets are drawn from
    /// `0..nodes`, without replacement while possible).
    pub nodes: u32,
    /// Crashes are drawn uniformly in `[window_start, window_end)`.
    pub window_start: SimTime,
    /// End of the crash window (exclusive).
    pub window_end: SimTime,
    /// Each crashed node recovers this long after its crash; `None` means
    /// crashed nodes stay down.
    pub recovery_after: Option<SimDuration>,
    /// Number of client disconnects to inject (clients drawn from
    /// `0..clients`, times drawn from the same window).
    pub client_disconnects: u32,
    /// Number of clients in the workload.
    pub clients: u32,
}

impl FaultSpec {
    /// Expands the spec into a concrete plan. Same `(spec, seed)` ⇒
    /// identical plan. Crash targets are distinct while `node_crashes <=
    /// nodes`; times are uniform over the window; events are sorted by
    /// `(at, generation index)` so ties resolve deterministically.
    pub fn generate(&self, seed: u64) -> FaultPlan {
        let mut rng = Xoshiro256pp::seed_from_u64(seed ^ 0x00FA_117F_A117);
        let window = self
            .window_end
            .saturating_since(self.window_start)
            .as_nanos();
        let draw_at = |rng: &mut Xoshiro256pp| {
            let off = if window == 0 {
                0
            } else {
                rng.next_below(window)
            };
            self.window_start
                .saturating_add(SimDuration::from_nanos(off))
        };
        let mut events: Vec<FaultEvent> = Vec::new();
        // Distinct crash targets while the fleet allows it.
        let mut targets: Vec<u32> = (0..self.nodes).collect();
        rng.shuffle(&mut targets);
        for i in 0..self.node_crashes {
            let node = if (i as usize) < targets.len() {
                targets[i as usize]
            } else if self.nodes == 0 {
                break;
            } else {
                rng.next_below(self.nodes as u64) as u32
            };
            let at = draw_at(&mut rng);
            events.push(FaultEvent {
                at,
                kind: FaultKind::NodeCrash(node),
            });
            if let Some(after) = self.recovery_after {
                events.push(FaultEvent {
                    at: at.saturating_add(after),
                    kind: FaultKind::NodeRecover(node),
                });
            }
        }
        for _ in 0..self.client_disconnects {
            if self.clients == 0 {
                break;
            }
            let client = rng.next_below(self.clients as u64) as u32;
            events.push(FaultEvent {
                at: draw_at(&mut rng),
                kind: FaultKind::ClientDisconnect(client),
            });
        }
        // Stable sort keeps generation order as the tie-break, so a crash
        // generated before a disconnect at the same instant fires first.
        events.sort_by_key(|e| e.at);
        FaultPlan {
            kernel_fault_rate: self.kernel_fault_rate,
            events,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> FaultSpec {
        FaultSpec {
            kernel_fault_rate: 0.01,
            node_crashes: 2,
            nodes: 4,
            window_start: SimTime::from_millis(10),
            window_end: SimTime::from_millis(50),
            recovery_after: Some(SimDuration::from_millis(15)),
            client_disconnects: 3,
            clients: 8,
        }
    }

    #[test]
    fn same_seed_same_plan() {
        let a = spec().generate(42);
        let b = spec().generate(42);
        assert_eq!(a.kernel_fault_rate, b.kernel_fault_rate);
        assert_eq!(a.events, b.events);
    }

    #[test]
    fn different_seed_different_plan() {
        let a = spec().generate(1);
        let b = spec().generate(2);
        assert_ne!(a.events, b.events);
    }

    #[test]
    fn crash_targets_are_distinct_and_recoveries_paired() {
        let plan = spec().generate(7);
        let crashes: Vec<u32> = plan
            .events
            .iter()
            .filter_map(|e| match e.kind {
                FaultKind::NodeCrash(n) => Some(n),
                _ => None,
            })
            .collect();
        assert_eq!(crashes.len(), 2);
        assert_ne!(crashes[0], crashes[1], "targets drawn without replacement");
        for &node in &crashes {
            let crash_at = plan
                .events
                .iter()
                .find(|e| e.kind == FaultKind::NodeCrash(node))
                .map(|e| e.at)
                .expect("crash exists");
            let recover_at = plan
                .events
                .iter()
                .find(|e| e.kind == FaultKind::NodeRecover(node))
                .map(|e| e.at)
                .expect("recovery paired with crash");
            assert_eq!(
                recover_at,
                crash_at.saturating_add(SimDuration::from_millis(15))
            );
        }
    }

    #[test]
    fn events_sorted_and_inside_window() {
        let plan = spec().generate(9);
        let mut prev = SimTime::ZERO;
        for e in &plan.events {
            assert!(e.at >= prev, "events sorted by time");
            prev = e.at;
            if matches!(
                e.kind,
                FaultKind::NodeCrash(_) | FaultKind::ClientDisconnect(_)
            ) {
                assert!(e.at >= SimTime::from_millis(10));
                assert!(e.at < SimTime::from_millis(50));
            }
        }
        assert_eq!(
            plan.events.len(),
            2 + 2 + 3,
            "crashes + recoveries + disconnects"
        );
    }

    #[test]
    fn empty_plan() {
        let p = FaultPlan::none();
        assert!(p.is_empty());
        assert!(!spec().generate(0).is_empty());
    }
}
