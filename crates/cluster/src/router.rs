//! Software-defined request routing across Paella nodes.
//!
//! The router is the cluster-tier analogue of the dispatcher's scheduler: a
//! pure policy fed by per-node load signals. Three classic baselines
//! (round-robin, join-the-shortest-queue, power-of-two-choices) bracket the
//! Paella-native policy, [`RoutingPolicy::LeastRemainingWork`], which routes
//! on each node's ground-truth estimated-remaining-time — the same SRPT
//! signal the node's own scheduler ranks jobs by, exported through
//! `ServingSystem::load_signal()` instead of being thrown away at the node
//! boundary.

use std::collections::HashMap;

use paella_sim::{SimDuration, Xoshiro256pp};

/// How the cluster router balances requests across a model's replica set.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RoutingPolicy {
    /// Rotate through the replica set regardless of load.
    RoundRobin,
    /// Join the shortest queue: fewest outstanding requests wins.
    Jsq,
    /// Sample two random replicas, send to the less loaded one.
    PowerOfTwoChoices,
    /// Smallest estimated remaining work (queued + in-flight + in-network),
    /// measured in profiled device time — Paella's SRPT signal lifted to
    /// the cluster tier.
    LeastRemainingWork,
}

impl RoutingPolicy {
    /// Stable display name (bench output, trace events).
    pub fn as_str(self) -> &'static str {
        match self {
            RoutingPolicy::RoundRobin => "round-robin",
            RoutingPolicy::Jsq => "jsq",
            RoutingPolicy::PowerOfTwoChoices => "power-of-two",
            RoutingPolicy::LeastRemainingWork => "least-remaining-work",
        }
    }
}

/// One node's load as seen by the router at decision time.
#[derive(Clone, Copy, Debug)]
pub struct NodeLoad {
    /// Requests routed to the node and not yet completed (includes
    /// in-network, queued, and in-flight requests).
    pub outstanding: u64,
    /// Estimated remaining device work, including requests still crossing
    /// the network to the node.
    pub remaining_work: SimDuration,
    /// KV-cache occupancy in basis points (0..=10000); zero when the node
    /// serves no KV-budgeted (autoregressive) models. Load-aware policies
    /// inflate a node's apparent load as its KV pool saturates: a
    /// memory-full node cannot admit new sequences no matter how short its
    /// queue looks.
    pub kv_pressure_bp: u64,
}

impl NodeLoad {
    /// Inflates `value` by the node's KV pressure: `value / (1 - pressure)`
    /// in integer math, so a half-full pool doubles apparent load and a
    /// saturated pool (10000 bp) maps to `u64::MAX` — routed to only when
    /// every candidate is saturated. With zero pressure this is `value`
    /// unchanged, keeping non-LLM clusters byte-identical to before.
    fn kv_inflated(&self, value: u64) -> u64 {
        let bp = self.kv_pressure_bp.min(10_000);
        if bp >= 10_000 {
            return u64::MAX;
        }
        ((u128::from(value) * 10_000) / u128::from(10_000 - bp)).min(u128::from(u64::MAX)) as u64
    }

    /// The queue-depth signal JSQ and po2 compare, KV-adjusted.
    fn effective_outstanding(&self) -> u64 {
        self.kv_inflated(self.outstanding)
    }

    /// The remaining-work signal LRW compares, KV-adjusted (nanoseconds).
    fn effective_remaining_ns(&self) -> u64 {
        self.kv_inflated(self.remaining_work.as_nanos())
    }
}

/// The routing decision engine: policy plus the state it needs (round-robin
/// cursor, seeded RNG for the randomized policies). Deterministic: ties
/// break to the lowest node index and the RNG is seeded at construction.
pub struct ClusterRouter {
    policy: RoutingPolicy,
    /// Round-robin cursor *per candidate set*: a single global cursor would
    /// skew the rotation whenever picks over replica sets of different sizes
    /// interleave (alternating 2- and 3-replica models starves one replica).
    cursors: HashMap<Vec<usize>, usize>,
    rng: Xoshiro256pp,
}

impl ClusterRouter {
    /// A router with the given policy and RNG seed.
    pub fn new(policy: RoutingPolicy, seed: u64) -> Self {
        ClusterRouter {
            policy,
            cursors: HashMap::new(),
            rng: Xoshiro256pp::seed_from_u64(seed),
        }
    }

    /// The active policy.
    pub fn policy(&self) -> RoutingPolicy {
        self.policy
    }

    /// Picks one of `candidates` (node indices, non-empty) given each
    /// candidate's load in `loads` (parallel to `candidates`). Returns the
    /// position *within* `candidates`.
    ///
    /// # Panics
    ///
    /// Panics if `candidates` is empty or the slices disagree in length.
    pub fn pick(&mut self, candidates: &[usize], loads: &[NodeLoad]) -> usize {
        assert!(!candidates.is_empty(), "routing needs at least one replica");
        assert_eq!(candidates.len(), loads.len(), "loads must match candidates");
        if candidates.len() == 1 {
            return 0;
        }
        match self.policy {
            RoutingPolicy::RoundRobin => {
                let cursor = self.cursors.entry(candidates.to_vec()).or_insert(0);
                let pos = *cursor % candidates.len();
                *cursor = cursor.wrapping_add(1);
                pos
            }
            RoutingPolicy::Jsq => min_by_key(loads, |l| l.effective_outstanding()),
            RoutingPolicy::PowerOfTwoChoices => {
                let a = self.rng.index(candidates.len());
                // Draw the second choice from the remaining n-1 slots so the
                // two samples are always distinct.
                let mut b = self.rng.index(candidates.len() - 1);
                if b >= a {
                    b += 1;
                }
                let (lo, hi) = (a.min(b), a.max(b));
                if loads[hi].effective_outstanding() < loads[lo].effective_outstanding() {
                    hi
                } else {
                    lo
                }
            }
            RoutingPolicy::LeastRemainingWork => min_by_key(loads, |l| l.effective_remaining_ns()),
        }
    }
}

/// Position of the minimum key; ties go to the first (lowest) position.
fn min_by_key<K: Ord>(loads: &[NodeLoad], key: impl Fn(&NodeLoad) -> K) -> usize {
    let mut best = 0;
    for i in 1..loads.len() {
        if key(&loads[i]) < key(&loads[best]) {
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn load(outstanding: u64, work_us: u64) -> NodeLoad {
        NodeLoad {
            outstanding,
            remaining_work: SimDuration::from_micros(work_us),
            kv_pressure_bp: 0,
        }
    }

    fn kv_load(outstanding: u64, work_us: u64, kv_bp: u64) -> NodeLoad {
        NodeLoad {
            kv_pressure_bp: kv_bp,
            ..load(outstanding, work_us)
        }
    }

    #[test]
    fn round_robin_cycles() {
        let mut r = ClusterRouter::new(RoutingPolicy::RoundRobin, 1);
        let c = [0, 1, 2];
        let l = [load(9, 9), load(0, 0), load(5, 5)];
        let picks: Vec<usize> = (0..6).map(|_| r.pick(&c, &l)).collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2], "load-oblivious rotation");
    }

    #[test]
    fn round_robin_rotates_fairly_per_candidate_set() {
        // Interleaved picks over a 2-replica and a 3-replica set: each set
        // must rotate through all of its members independently. A single
        // global cursor would advance by 2 per set between visits and strand
        // the rotation on a subset.
        let mut r = ClusterRouter::new(RoutingPolicy::RoundRobin, 1);
        let two = [0, 1];
        let three = [0, 1, 2];
        let l2 = [load(0, 0); 2];
        let l3 = [load(0, 0); 3];
        let mut picks2 = Vec::new();
        let mut picks3 = Vec::new();
        for _ in 0..6 {
            picks2.push(r.pick(&two, &l2));
            picks3.push(r.pick(&three, &l3));
        }
        assert_eq!(picks2, vec![0, 1, 0, 1, 0, 1], "2-set rotation unskewed");
        assert_eq!(picks3, vec![0, 1, 2, 0, 1, 2], "3-set rotation unskewed");
    }

    #[test]
    fn jsq_takes_the_shortest_queue_with_low_index_ties() {
        let mut r = ClusterRouter::new(RoutingPolicy::Jsq, 1);
        assert_eq!(r.pick(&[0, 1, 2], &[load(3, 0), load(1, 0), load(2, 0)]), 1);
        assert_eq!(r.pick(&[0, 1, 2], &[load(2, 0), load(2, 0), load(2, 0)]), 0);
    }

    #[test]
    fn least_remaining_work_ignores_counts() {
        // Five cheap requests beat one expensive one: LRW sees through the
        // queue length to the actual work.
        let mut r = ClusterRouter::new(RoutingPolicy::LeastRemainingWork, 1);
        let l = [load(1, 10_000), load(5, 500)];
        assert_eq!(r.pick(&[0, 1], &l), 1);
    }

    #[test]
    fn power_of_two_prefers_the_lighter_sample() {
        // With one node massively loaded, po2 must route there at most
        // rarely: only when both samples hit it — impossible with distinct
        // draws from two nodes.
        let mut r = ClusterRouter::new(RoutingPolicy::PowerOfTwoChoices, 7);
        let l = [load(100, 0), load(0, 0)];
        for _ in 0..50 {
            assert_eq!(r.pick(&[0, 1], &l), 1);
        }
    }

    #[test]
    fn jsq_deprioritizes_kv_saturated_node() {
        // Node 0 has the shorter queue but a saturated KV pool: it cannot
        // admit a new sequence, so JSQ must route to node 1 despite the
        // longer queue. A merely half-full pool (doubling apparent load)
        // also loses against a genuinely shorter queue.
        let mut r = ClusterRouter::new(RoutingPolicy::Jsq, 1);
        let l = [kv_load(1, 0, 10_000), kv_load(6, 0, 0)];
        assert_eq!(r.pick(&[0, 1], &l), 1, "saturated node avoided");
        // Half-full pool doubles apparent depth: 4 -> 8 loses to 6...
        let l = [kv_load(4, 0, 5_000), kv_load(6, 0, 0)];
        assert_eq!(r.pick(&[0, 1], &l), 1);
        // ...but a 2 -> 4 inflation still beats 6.
        let l = [kv_load(2, 0, 5_000), kv_load(6, 0, 0)];
        assert_eq!(r.pick(&[0, 1], &l), 0);
    }

    #[test]
    fn lrw_deprioritizes_kv_saturated_node() {
        let mut r = ClusterRouter::new(RoutingPolicy::LeastRemainingWork, 1);
        // Saturated pool beats even a 100x work advantage.
        let l = [kv_load(1, 100, 10_000), kv_load(1, 10_000, 0)];
        assert_eq!(r.pick(&[0, 1], &l), 1, "KV-full node deprioritized");
        // Half-full pool doubles apparent work: 6000us -> 12000us loses to
        // 10000us.
        let l = [kv_load(1, 6_000, 5_000), kv_load(1, 10_000, 0)];
        assert_eq!(r.pick(&[0, 1], &l), 1);
        // ...but wins when its raw advantage survives the inflation.
        let l = [kv_load(1, 4_000, 5_000), kv_load(1, 10_000, 0)];
        assert_eq!(r.pick(&[0, 1], &l), 0);
    }

    #[test]
    fn po2_deprioritizes_kv_saturated_node() {
        let mut r = ClusterRouter::new(RoutingPolicy::PowerOfTwoChoices, 7);
        // Both draws always land on {0, 1}; the saturated node must lose
        // every comparison even with the shorter raw queue.
        let l = [kv_load(0, 0, 10_000), kv_load(50, 0, 0)];
        for _ in 0..50 {
            assert_eq!(r.pick(&[0, 1], &l), 1);
        }
    }

    #[test]
    fn zero_pressure_leaves_signals_unchanged() {
        let l = load(7, 123);
        assert_eq!(l.effective_outstanding(), 7);
        assert_eq!(
            l.effective_remaining_ns(),
            SimDuration::from_micros(123).as_nanos()
        );
    }

    #[test]
    fn same_seed_same_choices() {
        let seq = |seed: u64| {
            let mut r = ClusterRouter::new(RoutingPolicy::PowerOfTwoChoices, seed);
            let l = [load(4, 0), load(4, 0), load(4, 0), load(4, 0)];
            (0..32)
                .map(|_| r.pick(&[0, 1, 2, 3], &l))
                .collect::<Vec<_>>()
        };
        assert_eq!(seq(42), seq(42), "routing must be reproducible");
    }
}
