//! Serve a Zipf-skewed model mix on a 4-node cluster and compare routing
//! policies — a miniature of the `fig_cluster` experiment.
//!
//! Run with: `cargo run --release --example cluster_serving`

use paella_cluster::RoutingPolicy;
use paella_workload::{run_cluster_point, smoke_models, ClusterExpSpec};

fn main() {
    let models = smoke_models();
    println!("4-node cluster, Zipf(1.1) popularity over 4 models, ~75% of fleet capacity:\n");
    println!(
        "{:22} {:>12} {:>12} {:>10} {:>10}",
        "policy", "tput (r/s)", "goodput", "p99 (ms)", "mean (ms)"
    );
    for policy in [
        RoutingPolicy::RoundRobin,
        RoutingPolicy::Jsq,
        RoutingPolicy::PowerOfTwoChoices,
        RoutingPolicy::LeastRemainingWork,
    ] {
        let r = run_cluster_point(&models, &ClusterExpSpec::smoke(policy));
        println!(
            "{:22} {:>12.1} {:>12.1} {:>10.1} {:>10.2}",
            policy.as_str(),
            r.throughput,
            r.goodput,
            r.p99_us / 1_000.0,
            r.mean_us / 1_000.0
        );
    }
    println!(
        "\nRound-robin is load-oblivious: it keeps handing requests to the\n\
         replica that happens to be grinding through a rare heavy job. The\n\
         load-aware policies — JSQ, power-of-two sampling, and Paella-native\n\
         least-remaining-work (routing on each dispatcher's SRPT signal) —\n\
         steer around the busy node and cut the tail."
    );
}
