//! The flight recorder's post-mortem dump: a deterministic, line-oriented
//! text rendering of the last N trace events plus the component's queue and
//! occupancy state at the instant a terminal failure fired (DESIGN §12).
//!
//! The format is fixed so same-seed runs produce byte-identical dumps:
//!
//! ```text
//! === paella flight recorder ===
//! trigger: node-crash-sole-replica
//! at_ns: 123456
//! state: jobs_inflight=3
//! state: queued_ingest=1
//! event: at_ns=123000 seq=41 kind=kernel-dispatched KernelDispatched { .. }
//! === end flight recorder ===
//! ```

use paella_sim::SimTime;

use crate::tracer::TracedEvent;

/// Renders one post-mortem dump. `state` pairs print in the order given —
/// callers must pass a fixed order. Events print oldest first, via the
/// event's derived `Debug` (stable for a fixed enum definition).
pub fn render(trigger: &str, at: SimTime, state: &[(&str, u64)], events: &[TracedEvent]) -> String {
    let mut out = String::new();
    out.push_str("=== paella flight recorder ===\n");
    out.push_str(&format!("trigger: {trigger}\n"));
    out.push_str(&format!("at_ns: {}\n", at.as_nanos()));
    for (k, v) in state {
        out.push_str(&format!("state: {k}={v}\n"));
    }
    for e in events {
        out.push_str(&format!(
            "event: at_ns={} seq={} kind={} {:?}\n",
            e.at.as_nanos(),
            e.seq,
            e.event.kind(),
            e.event
        ));
    }
    out.push_str("=== end flight recorder ===\n");
    out
}

/// Validates a dump's structure: header and trailer lines, a `trigger:`
/// line, a parseable `at_ns:` line, and every body line being a `state:`
/// or `event:` record (events with parseable `at_ns=`/`seq=` fields).
pub fn validate_dump(dump: &str) -> Result<(), String> {
    let mut lines = dump.lines();
    if lines.next() != Some("=== paella flight recorder ===") {
        return Err("missing header line".into());
    }
    match lines.next() {
        Some(l) if l.starts_with("trigger: ") && l.len() > "trigger: ".len() => {}
        other => return Err(format!("bad trigger line: {other:?}")),
    }
    match lines.next() {
        Some(l) => {
            let v = l
                .strip_prefix("at_ns: ")
                .ok_or_else(|| format!("bad at_ns line: {l:?}"))?;
            v.parse::<u64>()
                .map_err(|e| format!("unparseable at_ns {v:?}: {e}"))?;
        }
        None => return Err("truncated before at_ns".into()),
    }
    let mut saw_trailer = false;
    for l in lines {
        if saw_trailer {
            return Err(format!("content after trailer: {l:?}"));
        }
        if l == "=== end flight recorder ===" {
            saw_trailer = true;
        } else if let Some(rest) = l.strip_prefix("state: ") {
            let (_, v) = rest
                .split_once('=')
                .ok_or_else(|| format!("bad state line: {l:?}"))?;
            v.parse::<u64>()
                .map_err(|e| format!("unparseable state value {v:?}: {e}"))?;
        } else if let Some(rest) = l.strip_prefix("event: ") {
            let at = rest
                .strip_prefix("at_ns=")
                .and_then(|r| r.split(' ').next())
                .ok_or_else(|| format!("bad event line: {l:?}"))?;
            at.parse::<u64>()
                .map_err(|e| format!("unparseable event at_ns {at:?}: {e}"))?;
            if !rest.contains(" seq=") || !rest.contains(" kind=") {
                return Err(format!("event line missing seq/kind: {l:?}"));
            }
        } else {
            return Err(format!("unrecognized line: {l:?}"));
        }
    }
    if !saw_trailer {
        return Err("missing trailer line".into());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::TraceEvent;

    fn sample() -> String {
        let events = vec![
            TracedEvent {
                at: SimTime::from_micros(10),
                seq: 3,
                event: TraceEvent::KernelCompleted { kernel: 7 },
            },
            TracedEvent {
                at: SimTime::from_micros(12),
                seq: 4,
                event: TraceEvent::NodeCrash { node: 0 },
            },
        ];
        render(
            "node-crash-sole-replica",
            SimTime::from_micros(12),
            &[("jobs_inflight", 3), ("queued_ingest", 1)],
            &events,
        )
    }

    #[test]
    fn rendered_dump_validates_and_is_deterministic() {
        let a = sample();
        let b = sample();
        assert_eq!(a, b);
        validate_dump(&a).unwrap();
        assert!(a.contains("trigger: node-crash-sole-replica"));
        assert!(a.contains("state: jobs_inflight=3"));
        assert!(a.contains("kind=node-crash"));
    }

    #[test]
    fn validator_rejects_malformed_dumps() {
        assert!(validate_dump("").is_err());
        assert!(validate_dump("=== paella flight recorder ===\n").is_err());
        let good = sample();
        let no_trailer = good.replace("=== end flight recorder ===\n", "");
        assert!(validate_dump(&no_trailer).is_err());
        let bad_state = good.replace("jobs_inflight=3", "jobs_inflight=x");
        assert!(validate_dump(&bad_state).is_err());
        let stray = good.replace("state: queued_ingest=1\n", "garbage\n");
        assert!(validate_dump(&stray).is_err());
        let after = format!("{good}extra\n");
        assert!(validate_dump(&after).is_err());
    }
}
