//! The atomics abstraction that lets one channel algorithm run both under
//! the interleaving checker and on real hardware atomics.
//!
//! Channel models in [`crate::models`] are written against
//! [`AtomicCell<C>`]: under the checker `C` is the engine context
//! ([`Ctx`]) and every access is a schedule point with explorable
//! weak-memory behavior; on real atomics `C = ()` and the calls compile
//! down to plain `std::sync::atomic` operations. The same source therefore
//! serves as both the verified model and a sanity-checkable executable.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::mc::memory::MemOrd;
use crate::mc::{Ctx, VAtomic};

/// A 64-bit atomic location usable through context `C`.
pub trait AtomicCell<C> {
    /// Atomic load with candidate-choice weak-memory semantics under the
    /// checker (may observe stale values permitted by the ordering).
    fn load(&self, c: &mut C, ord: MemOrd) -> u64;
    /// A load guaranteed to observe the latest store — what a spin loop
    /// relies on for progress. On real atomics this is a plain `load`.
    fn load_fresh(&self, c: &mut C, ord: MemOrd) -> u64;
    /// Atomic store.
    fn store(&self, c: &mut C, val: u64, ord: MemOrd);
    /// Atomic fetch-add returning the previous value.
    fn fetch_add(&self, c: &mut C, val: u64, ord: MemOrd) -> u64;
    /// Atomic compare-exchange; `Err` carries the observed value.
    fn compare_exchange(&self, c: &mut C, current: u64, new: u64, ord: MemOrd) -> Result<u64, u64>;
    /// Blocks (or spins) until a fresh load satisfies `pred`; returns that
    /// value. Under the checker this parks the thread until the location
    /// changes, keeping executions finite; on real atomics it spins.
    fn wait_until<F: Fn(u64) -> bool>(&self, c: &mut C, ord: MemOrd, pred: F) -> u64;
}

impl AtomicCell<Ctx> for VAtomic {
    fn load(&self, c: &mut Ctx, ord: MemOrd) -> u64 {
        c.load(*self, ord)
    }

    fn load_fresh(&self, c: &mut Ctx, ord: MemOrd) -> u64 {
        c.load_fresh(*self, ord)
    }

    fn store(&self, c: &mut Ctx, val: u64, ord: MemOrd) {
        c.store(*self, val, ord)
    }

    fn fetch_add(&self, c: &mut Ctx, val: u64, ord: MemOrd) -> u64 {
        c.rmw(*self, ord, |v| v.wrapping_add(val))
    }

    fn compare_exchange(
        &self,
        c: &mut Ctx,
        current: u64,
        new: u64,
        ord: MemOrd,
    ) -> Result<u64, u64> {
        c.compare_exchange(*self, current, new, ord)
    }

    fn wait_until<F: Fn(u64) -> bool>(&self, c: &mut Ctx, ord: MemOrd, pred: F) -> u64 {
        loop {
            // Mark before loading: a store landing between the load and the
            // wait grows the history past the mark, so the wait returns
            // immediately instead of losing the wakeup.
            let m = c.mark(*self);
            let v = c.load_fresh(*self, ord);
            if pred(v) {
                return v;
            }
            c.wait_changed(*self, m);
        }
    }
}

fn to_std(ord: MemOrd) -> Ordering {
    match ord {
        MemOrd::Relaxed => Ordering::Relaxed,
        MemOrd::Acquire => Ordering::Acquire,
        MemOrd::Release => Ordering::Release,
        MemOrd::AcqRel => Ordering::AcqRel,
    }
}

/// `Acquire`/`AcqRel` are invalid store orderings in `std`; clamp to what
/// the standard allows while keeping at least the requested release side.
fn to_std_store(ord: MemOrd) -> Ordering {
    match ord {
        MemOrd::Relaxed => Ordering::Relaxed,
        MemOrd::Acquire | MemOrd::Release | MemOrd::AcqRel => Ordering::Release,
    }
}

fn to_std_load(ord: MemOrd) -> Ordering {
    match ord {
        MemOrd::Relaxed => Ordering::Relaxed,
        MemOrd::Acquire | MemOrd::Release | MemOrd::AcqRel => Ordering::Acquire,
    }
}

impl AtomicCell<()> for AtomicU64 {
    fn load(&self, _c: &mut (), ord: MemOrd) -> u64 {
        self.load(to_std_load(ord))
    }

    fn load_fresh(&self, _c: &mut (), ord: MemOrd) -> u64 {
        self.load(to_std_load(ord))
    }

    fn store(&self, _c: &mut (), val: u64, ord: MemOrd) {
        self.store(val, to_std_store(ord))
    }

    fn fetch_add(&self, _c: &mut (), val: u64, ord: MemOrd) -> u64 {
        self.fetch_add(val, to_std(ord))
    }

    fn compare_exchange(
        &self,
        _c: &mut (),
        current: u64,
        new: u64,
        ord: MemOrd,
    ) -> Result<u64, u64> {
        self.compare_exchange(current, new, to_std(ord), Ordering::Relaxed)
    }

    fn wait_until<F: Fn(u64) -> bool>(&self, _c: &mut (), ord: MemOrd, pred: F) -> u64 {
        loop {
            let v = self.load(to_std_load(ord));
            if pred(v) {
                return v;
            }
            std::hint::spin_loop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn std_atomic_roundtrip() {
        let a = AtomicU64::new(3);
        let c = &mut ();
        assert_eq!(AtomicCell::load(&a, c, MemOrd::Acquire), 3);
        AtomicCell::store(&a, c, 7, MemOrd::Release);
        assert_eq!(AtomicCell::load_fresh(&a, c, MemOrd::Relaxed), 7);
        assert_eq!(AtomicCell::fetch_add(&a, c, 2, MemOrd::AcqRel), 7);
        assert_eq!(
            AtomicCell::compare_exchange(&a, c, 9, 11, MemOrd::AcqRel),
            Ok(9)
        );
        assert_eq!(
            AtomicCell::compare_exchange(&a, c, 9, 12, MemOrd::AcqRel),
            Err(11)
        );
    }
}
