//! Operator fusion.
//!
//! TVM fuses elementwise epilogues (BatchNorm, ReLU) into the compute op
//! that produces their input, so a `conv → bn → relu` chain lowers to a
//! single kernel. This pass reproduces that behaviour: it walks the graph in
//! topological order and groups each compute node with the maximal chain of
//! single-consumer elementwise nodes hanging off it.

use std::collections::HashMap;

use crate::ir::{Graph, NodeId, Op};

/// A fusion group: one anchor (compute) node plus fused elementwise
/// epilogues, lowered together as one kernel.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FusionGroup {
    /// The compute node that defines the kernel's shape and cost.
    pub anchor: NodeId,
    /// Fused elementwise followers, in chain order.
    pub fused: Vec<NodeId>,
}

impl FusionGroup {
    /// The node whose output this group produces (last fused node, or the
    /// anchor itself).
    pub fn output(&self) -> NodeId {
        *self.fused.last().unwrap_or(&self.anchor)
    }
}

/// Partitions `graph` into fusion groups covering every non-input node
/// exactly once, preserving topological order of anchors.
pub fn fuse(graph: &Graph) -> Vec<FusionGroup> {
    // Count consumers: an elementwise node is only fusable if its producer
    // has no other consumer (otherwise the intermediate value is needed).
    let mut consumers: HashMap<NodeId, u32> = HashMap::new();
    for node in &graph.nodes {
        for &i in &node.inputs {
            *consumers.entry(i).or_insert(0) += 1;
        }
    }
    // Map from node to the elementwise node that follows it (if unique).
    let mut next_eltwise: HashMap<NodeId, NodeId> = HashMap::new();
    for node in &graph.nodes {
        if node.op.is_elementwise() && node.inputs.len() == 1 {
            let producer = node.inputs[0];
            if consumers.get(&producer).copied() == Some(1) {
                next_eltwise.insert(producer, node.id);
            }
        }
    }

    let mut absorbed = vec![false; graph.len()];
    let mut groups = Vec::new();
    for node in &graph.nodes {
        if matches!(node.op, Op::Input) || absorbed[node.id.0 as usize] {
            continue;
        }
        if node.op.is_elementwise() {
            // An unfused elementwise node becomes its own (cheap) kernel.
            // Chain further elementwise followers onto it all the same.
        }
        let mut group = FusionGroup {
            anchor: node.id,
            fused: Vec::new(),
        };
        let mut cur = node.id;
        while let Some(&next) = next_eltwise.get(&cur) {
            if absorbed[next.0 as usize] {
                break;
            }
            group.fused.push(next);
            absorbed[next.0 as usize] = true;
            cur = next;
        }
        groups.push(group);
    }
    groups
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::Shape;

    fn conv(out: u32) -> Op {
        Op::Conv2d {
            out_channels: out,
            kernel: 3,
            stride: 1,
            pad: 1,
        }
    }

    #[test]
    fn conv_bn_relu_fuses_to_one_group() {
        let mut g = Graph::new();
        let x = g.input(Shape::chw(3, 32, 32));
        let c = g.add(conv(16), &[x]).unwrap();
        let b = g.add(Op::BatchNorm, &[c]).unwrap();
        let r = g.add(Op::Relu, &[b]).unwrap();
        let groups = fuse(&g);
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].anchor, c);
        assert_eq!(groups[0].fused, vec![b, r]);
        assert_eq!(groups[0].output(), r);
    }

    #[test]
    fn chain_of_convs_yields_one_group_each() {
        let mut g = Graph::new();
        let x = g.input(Shape::chw(3, 32, 32));
        let c1 = g.add(conv(16), &[x]).unwrap();
        let r1 = g.add(Op::Relu, &[c1]).unwrap();
        let c2 = g.add(conv(32), &[r1]).unwrap();
        let r2 = g.add(Op::Relu, &[c2]).unwrap();
        let groups = fuse(&g);
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0].anchor, c1);
        assert_eq!(groups[0].fused, vec![r1]);
        assert_eq!(groups[1].anchor, c2);
        assert_eq!(groups[1].fused, vec![r2]);
    }

    #[test]
    fn branch_point_blocks_fusion() {
        // conv's output feeds both relu and a residual add: the relu cannot
        // be fused because the intermediate is observable.
        let mut g = Graph::new();
        let x = g.input(Shape::chw(16, 8, 8));
        let c = g.add(conv(16), &[x]).unwrap();
        let r = g.add(Op::Relu, &[c]).unwrap();
        let a = g.add(Op::Add, &[c, r]).unwrap();
        let groups = fuse(&g);
        let anchors: Vec<NodeId> = groups.iter().map(|gr| gr.anchor).collect();
        assert_eq!(anchors, vec![c, r, a]);
        assert!(groups.iter().all(|gr| gr.fused.is_empty()));
    }

    #[test]
    fn every_non_input_node_covered_exactly_once() {
        let mut g = Graph::new();
        let x = g.input(Shape::chw(3, 64, 64));
        let c1 = g.add(conv(8), &[x]).unwrap();
        let b1 = g.add(Op::BatchNorm, &[c1]).unwrap();
        let r1 = g.add(Op::Relu, &[b1]).unwrap();
        let p = g.add(Op::MaxPool { size: 2, stride: 2 }, &[r1]).unwrap();
        let c2 = g.add(conv(8), &[p]).unwrap();
        let a = g.add(Op::Add, &[p, c2]).unwrap();
        let _ = a;
        let groups = fuse(&g);
        let mut covered: Vec<NodeId> = Vec::new();
        for gr in &groups {
            covered.push(gr.anchor);
            covered.extend(&gr.fused);
        }
        covered.sort();
        let mut expected: Vec<NodeId> = g
            .nodes
            .iter()
            .filter(|n| !matches!(n.op, Op::Input))
            .map(|n| n.id)
            .collect();
        expected.sort();
        assert_eq!(covered, expected);
    }

    #[test]
    fn lone_elementwise_becomes_own_group() {
        let mut g = Graph::new();
        let x = g.input(Shape::chw(4, 4, 4));
        let r = g.add(Op::Relu, &[x]).unwrap();
        let groups = fuse(&g);
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].anchor, r);
    }
}
