//! Probability distributions used by the workloads.
//!
//! The paper's request inter-arrival pattern is lognormal with σ = 2 (bursty)
//! or σ = 1.5 (less bursty) and a mean set by the offered load (§7). Kernel
//! duration jitter uses normals; Poisson arrivals use exponential gaps.

use crate::rng::Xoshiro256pp;
use crate::time::SimDuration;

/// A sampleable distribution over non-negative real values (nanoseconds when
/// used for durations).
pub trait Distribution {
    /// Draws one sample.
    fn sample(&self, rng: &mut Xoshiro256pp) -> f64;

    /// Draws one sample as a duration, clamping negatives to zero.
    fn sample_duration(&self, rng: &mut Xoshiro256pp) -> SimDuration {
        SimDuration::from_micros_f64(self.sample(rng) / 1_000.0)
    }
}

/// Degenerate distribution: always returns the same value.
#[derive(Clone, Copy, Debug)]
pub struct Constant(pub f64);

impl Distribution for Constant {
    fn sample(&self, _rng: &mut Xoshiro256pp) -> f64 {
        self.0
    }
}

/// Uniform distribution over `[lo, hi)`.
#[derive(Clone, Copy, Debug)]
pub struct Uniform {
    lo: f64,
    hi: f64,
}

impl Uniform {
    /// Creates a uniform distribution over `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` or either bound is non-finite.
    pub fn new(lo: f64, hi: f64) -> Self {
        assert!(
            lo.is_finite() && hi.is_finite() && lo <= hi,
            "bad uniform bounds"
        );
        Uniform { lo, hi }
    }
}

impl Distribution for Uniform {
    fn sample(&self, rng: &mut Xoshiro256pp) -> f64 {
        self.lo + (self.hi - self.lo) * rng.next_f64()
    }
}

/// Exponential distribution with the given mean (i.e. rate = 1 / mean).
#[derive(Clone, Copy, Debug)]
pub struct Exponential {
    mean: f64,
}

impl Exponential {
    /// Creates an exponential distribution with mean `mean`.
    ///
    /// # Panics
    ///
    /// Panics if `mean` is not strictly positive and finite.
    pub fn with_mean(mean: f64) -> Self {
        assert!(mean.is_finite() && mean > 0.0, "bad exponential mean");
        Exponential { mean }
    }
}

impl Distribution for Exponential {
    fn sample(&self, rng: &mut Xoshiro256pp) -> f64 {
        // Inverse CDF; `1 - u` avoids ln(0).
        -self.mean * (1.0 - rng.next_f64()).ln()
    }
}

/// Standard-normal sampler via Box–Muller (the polar variant would need
/// rejection; the trigonometric form keeps the RNG consumption fixed at two
/// draws per pair, which preserves determinism when components are reordered).
fn standard_normal(rng: &mut Xoshiro256pp) -> f64 {
    let u1 = (1.0 - rng.next_f64()).max(f64::MIN_POSITIVE);
    let u2 = rng.next_f64();
    (-2.0 * u1.ln()).sqrt() * (core::f64::consts::TAU * u2).cos()
}

/// Normal distribution with mean `mu` and standard deviation `sigma`.
#[derive(Clone, Copy, Debug)]
pub struct Normal {
    mu: f64,
    sigma: f64,
}

impl Normal {
    /// Creates a normal distribution.
    ///
    /// # Panics
    ///
    /// Panics if `sigma` is negative or either parameter is non-finite.
    pub fn new(mu: f64, sigma: f64) -> Self {
        assert!(
            mu.is_finite() && sigma.is_finite() && sigma >= 0.0,
            "bad normal params"
        );
        Normal { mu, sigma }
    }
}

impl Distribution for Normal {
    fn sample(&self, rng: &mut Xoshiro256pp) -> f64 {
        self.mu + self.sigma * standard_normal(rng)
    }
}

/// Lognormal distribution parameterized by the *underlying normal's* μ and σ,
/// exactly as the paper specifies its arrival process (σ = 1.5 or 2).
#[derive(Clone, Copy, Debug)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
}

impl LogNormal {
    /// Creates a lognormal with underlying-normal parameters `mu`, `sigma`.
    ///
    /// # Panics
    ///
    /// Panics if `sigma` is negative or either parameter is non-finite.
    pub fn new(mu: f64, sigma: f64) -> Self {
        assert!(
            mu.is_finite() && sigma.is_finite() && sigma >= 0.0,
            "bad lognormal params"
        );
        LogNormal { mu, sigma }
    }

    /// Creates a lognormal with the given *distribution* mean and underlying
    /// σ. The paper fixes σ (burstiness) and varies the mean µ to set the
    /// offered load; since `E[X] = exp(μ + σ²/2)`, we solve for μ.
    ///
    /// # Panics
    ///
    /// Panics if `mean` is not strictly positive and finite or σ is invalid.
    pub fn with_mean(mean: f64, sigma: f64) -> Self {
        assert!(mean.is_finite() && mean > 0.0, "bad lognormal mean");
        LogNormal::new(mean.ln() - sigma * sigma / 2.0, sigma)
    }

    /// The distribution mean `exp(μ + σ²/2)`.
    pub fn mean(&self) -> f64 {
        (self.mu + self.sigma * self.sigma / 2.0).exp()
    }
}

impl Distribution for LogNormal {
    fn sample(&self, rng: &mut Xoshiro256pp) -> f64 {
        (self.mu + self.sigma * standard_normal(rng)).exp()
    }
}

/// Geometric distribution over `{1, 2, 3, ...}` with the given mean — the
/// number of trials up to and including the first success, `p = 1 / mean`.
/// Used for autoregressive output lengths: each decode step "succeeds"
/// (emits EOS) with probability `p`, so generation lengths are memoryless
/// the way sampled LLM outputs approximately are.
#[derive(Clone, Copy, Debug)]
pub struct Geometric {
    mean: f64,
}

impl Geometric {
    /// Creates a geometric distribution with mean `mean` (≥ 1).
    ///
    /// # Panics
    ///
    /// Panics if `mean` is not finite or is below 1.
    pub fn with_mean(mean: f64) -> Self {
        assert!(mean.is_finite() && mean >= 1.0, "bad geometric mean");
        Geometric { mean }
    }

    /// Draws one integer sample in `{1, 2, ...}`.
    pub fn sample_u64(&self, rng: &mut Xoshiro256pp) -> u64 {
        if self.mean <= 1.0 {
            return 1;
        }
        // Inverse CDF: ⌈ln(1-u) / ln(1-p)⌉, with `1 - u` guarded from 0.
        let p = 1.0 / self.mean;
        let u = (1.0 - rng.next_f64()).max(f64::MIN_POSITIVE);
        let x = (u.ln() / (1.0 - p).ln()).ceil();
        if x < 1.0 {
            1
        } else {
            x as u64
        }
    }
}

impl Distribution for Geometric {
    fn sample(&self, rng: &mut Xoshiro256pp) -> f64 {
        self.sample_u64(rng) as f64
    }
}

/// A boxed distribution, for heterogeneous configuration tables.
pub type DynDistribution = Box<dyn Distribution + Send>;

#[cfg(test)]
mod tests {
    use super::*;

    fn mean_of(d: &impl Distribution, n: usize, seed: u64) -> f64 {
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        (0..n).map(|_| d.sample(&mut rng)).sum::<f64>() / n as f64
    }

    #[test]
    fn constant_is_constant() {
        let d = Constant(7.5);
        let mut rng = Xoshiro256pp::seed_from_u64(1);
        for _ in 0..10 {
            assert_eq!(d.sample(&mut rng), 7.5);
        }
    }

    #[test]
    fn uniform_bounds_and_mean() {
        let d = Uniform::new(10.0, 20.0);
        let mut rng = Xoshiro256pp::seed_from_u64(2);
        for _ in 0..10_000 {
            let x = d.sample(&mut rng);
            assert!((10.0..20.0).contains(&x));
        }
        let m = mean_of(&d, 100_000, 3);
        assert!((m - 15.0).abs() < 0.1, "uniform mean {m}");
    }

    #[test]
    fn exponential_mean() {
        let d = Exponential::with_mean(250.0);
        let m = mean_of(&d, 200_000, 4);
        assert!((m - 250.0).abs() < 5.0, "exp mean {m}");
    }

    #[test]
    fn normal_mean_and_sd() {
        let d = Normal::new(100.0, 15.0);
        let mut rng = Xoshiro256pp::seed_from_u64(5);
        let n = 200_000;
        let xs: Vec<f64> = (0..n).map(|_| d.sample(&mut rng)).collect();
        let m = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / n as f64;
        assert!((m - 100.0).abs() < 0.5, "normal mean {m}");
        assert!((var.sqrt() - 15.0).abs() < 0.5, "normal sd {}", var.sqrt());
    }

    #[test]
    fn lognormal_with_mean_hits_target_mean() {
        // σ = 2 is the paper's bursty setting; the empirical mean of a
        // lognormal with σ = 2 converges slowly, so use a generous tolerance.
        for sigma in [0.5, 1.5] {
            let d = LogNormal::with_mean(1_000.0, sigma);
            assert!((d.mean() - 1_000.0).abs() < 1e-9);
            let m = mean_of(&d, 2_000_000, 6);
            assert!(
                (m - 1_000.0).abs() / 1_000.0 < 0.05,
                "lognormal σ={sigma} empirical mean {m}"
            );
        }
    }

    #[test]
    fn geometric_mean_and_support() {
        let d = Geometric::with_mean(32.0);
        let mut rng = Xoshiro256pp::seed_from_u64(7);
        let n = 200_000;
        let mut sum = 0u64;
        for _ in 0..n {
            let x = d.sample_u64(&mut rng);
            assert!(x >= 1);
            sum += x;
        }
        let m = sum as f64 / n as f64;
        assert!((m - 32.0).abs() < 0.5, "geometric mean {m}");
        // Degenerate mean-1 case always returns 1.
        let one = Geometric::with_mean(1.0);
        for _ in 0..100 {
            assert_eq!(one.sample_u64(&mut rng), 1);
        }
    }

    #[test]
    fn lognormal_positive() {
        let d = LogNormal::new(0.0, 2.0);
        let mut rng = Xoshiro256pp::seed_from_u64(8);
        for _ in 0..10_000 {
            assert!(d.sample(&mut rng) > 0.0);
        }
    }

    #[test]
    fn sample_duration_clamps() {
        let d = Constant(-5.0);
        let mut rng = Xoshiro256pp::seed_from_u64(9);
        assert_eq!(d.sample_duration(&mut rng), SimDuration::ZERO);
        let d = Constant(1_500.0); // 1500 ns
        assert_eq!(d.sample_duration(&mut rng).as_nanos(), 1_500);
    }
}
