//! Rules R1–R9 over token trees.
//!
//! Two execution strategies, matched to what each rule needs:
//!
//! * **Linear token rules** (R1–R4, R8, R9, and R6's hasher ban) scan the
//!   flat token stream with the `#[cfg(test)]` mask — they need operator
//!   fusion and literal-blanking but no block structure.
//! * **Dataflow-lite rules** (R6 iteration, R7 accounting) walk function
//!   bodies statement by statement, tracking `let` bindings, enclosing
//!   `if`/`while` conditions, preceding `assert!` guards, and the
//!   workspace-wide struct-field index, so they can tell
//!   `self.jobs.values().…sum::<f64>()` (order-dependent: flag) from
//!   `….keys().copied().collect()` followed by `ids.sort_unstable()`
//!   (collected-and-sorted: escape).
//!
//! Every rule is heuristic by design: it must never panic on odd code, and
//! it errs toward flagging — the allowlist (with a written justification)
//! is the pressure valve, not a weaker rule.

use std::collections::HashMap;

use super::items::StructItem;
use super::tree::{linearize, LTok, Tok, Tree};
use crate::lint::{justified, Line, Violation};

/// R6 rule id.
pub const R6: &str = "det-hash-iteration";
/// R7 rule id.
pub const R7: &str = "unchecked-counter-sub";
/// R8 rule id.
pub const R8: &str = "atomic-ordering-audit";
/// R9 rule id.
pub const R9: &str = "float-cmp-totality";

/// Which rules apply to a workspace-relative path.
#[derive(Clone, Copy, Debug, Default)]
pub struct Scope {
    /// R1: virtual-time stack (sim/core/gpu/cluster/bench/workload/
    /// telemetry). Unlike the legacy lint, the bench harness files are NOT
    /// carved out here — their wall-clock reads are allowlisted in
    /// `analyze.allow` with written justifications instead.
    pub sim_stack: bool,
    /// R2: lock-free channels.
    pub channels: bool,
    /// R3: per-request hot paths.
    pub hot_path: bool,
    /// R4: library code (everything but bench).
    pub library: bool,
    /// R6: scheduling/dispatch/cluster/workload decision paths.
    pub decision: bool,
    /// R7: occupancy/accounting structs (core, cluster, gpu).
    pub accounting: bool,
    /// R8: atomic operations (channels, core).
    pub atomics: bool,
    /// R9: float comparisons feeding decisions.
    pub float_cmp: bool,
}

/// Computes the rule scopes for one file path.
pub fn scope_of(path: &str) -> Scope {
    let starts = |p: &str| path.starts_with(p);
    let core = starts("crates/core/src/");
    let cluster = starts("crates/cluster/src/");
    let gpu = starts("crates/gpu/src/");
    let sim = starts("crates/sim/src/");
    let workload = starts("crates/workload/src/");
    let llm = starts("crates/llm/src/");
    Scope {
        sim_stack: sim
            || core
            || gpu
            || cluster
            || workload
            || llm
            || starts("crates/bench/src/")
            || starts("crates/telemetry/src/"),
        channels: starts("crates/channels/src/"),
        hot_path: path == "crates/core/src/dispatcher.rs" || cluster,
        library: starts("crates/") && path.contains("/src/") && !starts("crates/bench/"),
        decision: matches!(
            path,
            "crates/core/src/sched.rs"
                | "crates/core/src/dispatcher.rs"
                | "crates/core/src/batching.rs"
                | "crates/core/src/mig.rs"
        ) || cluster
            || workload
            || llm,
        accounting: core || cluster || gpu || llm,
        atomics: starts("crates/channels/src/") || core,
        float_cmp: sim || core || cluster || workload || gpu || llm,
    }
}

// ---------------------------------------------------------------------------
// Struct-field index
// ---------------------------------------------------------------------------

/// What the rules know about one struct field.
#[derive(Clone, Copy, Debug, Default)]
pub struct FieldClass {
    /// Typed `HashMap`/`HashSet`: iteration order is per-process seeded.
    pub hash: bool,
    /// Unsigned scalar counter/gauge (counter-ish name): `-=` can underflow.
    pub counter: bool,
    /// Map with unsigned counter values: `*map.get_mut(k) -= …` underflows.
    pub counter_map: bool,
}

impl FieldClass {
    fn merge(self, other: FieldClass) -> FieldClass {
        // Name collisions across structs resolve conservatively: a field
        // name that is hash-iterable or a counter *anywhere* is treated so
        // everywhere the same-file index has no better answer.
        FieldClass {
            hash: self.hash || other.hash,
            counter: self.counter || other.counter,
            counter_map: self.counter_map || other.counter_map,
        }
    }
}

/// Name fragments marking a field as an accounting counter/gauge.
const COUNTER_FRAGMENTS: &[&str] = &[
    "count",
    "outstanding",
    "inflight",
    "queued",
    "free",
    "used",
    "len",
    "resident",
    "running",
    "unplaced",
    "reserved",
    "blocks",
    "threads",
    "registers",
    "regs",
    "shmem",
    "slots",
    "occupancy",
    "credits",
    "budget",
    "seq",
    "per_sm",
];

const UNSIGNED: &[&str] = &["u8", "u16", "u32", "u64", "u128", "usize"];

fn classify_field(name: &str, ty: &str) -> FieldClass {
    let toks: Vec<&str> = ty.split_whitespace().collect();
    let unsigned_somewhere = toks.iter().any(|t| UNSIGNED.contains(t));
    let named = COUNTER_FRAGMENTS.iter().any(|f| name.contains(f));
    let is_map = toks
        .first()
        .is_some_and(|t| *t == "HashMap" || *t == "BTreeMap" || t.ends_with("Map"));
    FieldClass {
        hash: toks.iter().any(|t| *t == "HashMap" || *t == "HashSet"),
        counter: toks.len() == 1 && unsigned_somewhere && named,
        counter_map: is_map && unsigned_somewhere && named,
    }
}

/// Workspace-wide struct-field classification. Lookup prefers fields of
/// structs declared in the same file; unknown names fall back to the global
/// (conservatively merged) index, so cross-crate field accesses still
/// classify.
#[derive(Debug, Default)]
pub struct FieldIndex {
    per_file: HashMap<String, HashMap<String, FieldClass>>,
    global: HashMap<String, FieldClass>,
}

impl FieldIndex {
    /// Adds every field of `structs` (declared in `path`) to the index.
    pub fn add_structs(&mut self, path: &str, structs: &[StructItem]) {
        let file = self.per_file.entry(path.to_string()).or_default();
        for s in structs {
            for f in &s.fields {
                let c = classify_field(&f.name, &f.ty);
                let e = file.entry(f.name.clone()).or_default();
                *e = e.merge(c);
                let g = self.global.entry(f.name.clone()).or_default();
                *g = g.merge(c);
            }
        }
    }

    /// Classification of field `name` as seen from `path`.
    pub fn lookup(&self, path: &str, name: &str) -> FieldClass {
        if let Some(c) = self.per_file.get(path).and_then(|m| m.get(name)) {
            return *c;
        }
        self.global.get(name).copied().unwrap_or_default()
    }
}

// ---------------------------------------------------------------------------
// Linear token rules: R1–R4, R8, R9, R6-hasher
// ---------------------------------------------------------------------------

const ATOMIC_METHODS: &[&str] = &[
    "load",
    "store",
    "swap",
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "fetch_max",
    "fetch_min",
    "fetch_update",
    "compare_exchange",
    "compare_exchange_weak",
];

fn ordering_tag(ordering: &str) -> Option<&'static str> {
    match ordering {
        "Relaxed" => Some("relaxed:"),
        "Acquire" => Some("acquire:"),
        "Release" => Some("release:"),
        "AcqRel" => Some("acqrel:"),
        "SeqCst" => Some("seqcst:"),
        _ => None,
    }
}

fn seq(toks: &[Tok], i: usize, pat: &[&str]) -> bool {
    pat.iter()
        .enumerate()
        .all(|(k, p)| toks.get(i + k).is_some_and(|t| t.text == *p))
}

/// Runs the token-stream rules over one file.
#[allow(clippy::too_many_lines)]
pub(crate) fn token_rules(
    path: &str,
    lines: &[Line],
    toks: &[Tok],
    mask: &[bool],
    scope: Scope,
    out: &mut Vec<Violation>,
) {
    let mut push = |line: usize, rule: &'static str, message: String| {
        out.push(Violation {
            file: path.to_string(),
            line: line + 1,
            rule,
            message,
        });
    };
    let in_test = |line: usize| mask.get(line).copied().unwrap_or(false);
    for (i, t) in toks.iter().enumerate() {
        // R1: wall clock in the virtual-time stack (applies in tests too —
        // a test that reads the host clock is as nondeterministic as the
        // code it checks).
        if scope.sim_stack && t.ident && (t.text == "Instant" || t.text == "SystemTime") {
            push(
                t.line,
                "no-wall-clock",
                "wall-clock time in the virtual-time simulation stack".into(),
            );
        }
        if in_test(t.line) {
            continue;
        }
        // R2: Relaxed in channels needs a written argument.
        if scope.channels
            && seq(toks, i, &["Ordering", "::", "Relaxed"])
            && !justified(lines, t.line, "relaxed:")
        {
            push(
                t.line,
                "relaxed-needs-justification",
                "Ordering::Relaxed without a `relaxed:` justification comment".into(),
            );
        }
        // R3: hot-path unwrap/bare expect.
        if scope.hot_path {
            if seq(toks, i, &[".", "unwrap", "(", ")"]) {
                push(
                    toks[i + 1].line,
                    "hot-path-unwrap",
                    "unwrap() on a request hot path; use expect() with an `invariant:` comment"
                        .into(),
                );
            }
            if seq(toks, i, &[".", "expect", "("])
                && !justified(lines, toks[i + 1].line, "invariant:")
            {
                push(
                    toks[i + 1].line,
                    "hot-path-unwrap",
                    "expect() on a request hot path without an `invariant:` comment".into(),
                );
            }
        }
        // R4: no sleeping in library code.
        if scope.library && seq(toks, i, &["thread", "::", "sleep"]) {
            push(
                t.line,
                "no-thread-sleep",
                "thread::sleep in library code; the stack is event-driven".into(),
            );
        }
        // R6 (hasher half): seeded hashers anywhere in decision paths.
        if scope.decision && t.ident && (t.text == "RandomState" || t.text == "DefaultHasher") {
            push(
                t.line,
                R6,
                format!(
                    "{} is per-process seeded; decision paths must be cross-process deterministic",
                    t.text
                ),
            );
        }
        // R8: every atomic op needs a per-operation ordering justification.
        if scope.atomics
            && t.ident
            && ATOMIC_METHODS.contains(&t.text.as_str())
            && i > 0
            && toks[i - 1].text == "."
            && toks.get(i + 1).is_some_and(|n| n.text == "(")
        {
            // Scan the argument region (to the matching close paren) for
            // Ordering::X mentions; no Ordering argument ⇒ not an atomic op
            // (e.g. `.load` of a config cache).
            let mut depth = 0i64;
            let mut j = i + 1;
            while j < toks.len() {
                match toks[j].text.as_str() {
                    "(" | "[" | "{" => depth += 1,
                    ")" | "]" | "}" => {
                        depth -= 1;
                        if depth <= 0 {
                            break;
                        }
                    }
                    "Ordering" if seq(toks, j, &["Ordering", "::"]) => {
                        if let Some(ord) = toks.get(j + 2) {
                            let tag = ordering_tag(&ord.text);
                            // R2 already owns Relaxed-in-channels; R8 covers
                            // every other (file, ordering) pair so no op is
                            // double-reported.
                            let r2_owns = scope.channels && ord.text == "Relaxed";
                            if let (Some(tag), false) = (tag, r2_owns) {
                                let ok = justified(lines, ord.line, tag)
                                    || justified(lines, ord.line, "ordering:")
                                    || justified(lines, t.line, tag)
                                    || justified(lines, t.line, "ordering:");
                                if !ok {
                                    push(
                                        ord.line,
                                        R8,
                                        format!(
                                            "atomic `{}` with Ordering::{} lacks an adjacent `{}` (or `ordering:`) justification",
                                            t.text, ord.text, tag
                                        ),
                                    );
                                }
                            }
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
        }
        // R9: NaN-unsafe comparisons in decision code. `fn partial_cmp` is
        // a PartialOrd impl, not a use site.
        if scope.float_cmp
            && t.ident
            && t.text == "partial_cmp"
            && !(i > 0 && toks[i - 1].text == "fn")
        {
            let fwd_panics = toks[i..]
                .iter()
                .take_while(|x| x.text != ";")
                .take(40)
                .any(|x| x.ident && (x.text == "unwrap" || x.text == "expect"));
            let back_sorts = toks[..i]
                .iter()
                .rev()
                .take_while(|x| x.text != ";" && x.text != "{")
                .take(40)
                .any(|x| {
                    x.ident
                        && matches!(
                            x.text.as_str(),
                            "sort_by"
                                | "sort_unstable_by"
                                | "max_by"
                                | "min_by"
                                | "binary_search_by"
                        )
                });
            if fwd_panics || back_sorts {
                push(
                    t.line,
                    R9,
                    "NaN-unsafe partial_cmp in decision code; use f64::total_cmp or an integer key"
                        .into(),
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Dataflow-lite walker: R6 iteration, R7 accounting
// ---------------------------------------------------------------------------

/// One scanned token of a statement (delimiters included as plain tokens).
#[derive(Clone, Debug)]
struct S {
    t: String,
    line: usize,
    id: bool,
}

fn scan(trees: &[Tree]) -> Vec<S> {
    let mut l = Vec::new();
    linearize(trees, false, &mut l);
    l.into_iter()
        .map(|x| match x {
            LTok::T(t) => S {
                id: t.ident,
                t: t.text,
                line: t.line,
            },
            other => S {
                t: other.text().to_string(),
                line: other.line(),
                id: false,
            },
        })
        .collect()
}

/// Walks back from the operator/dot at `at` and collects the receiver chain
/// (outermost first), plus whether it was dereferenced (`*x`). Gives up
/// (empty chain) on anything but a plain `a.b.c` path — unknown receivers
/// are never flagged.
fn chain_back(s: &[S], at: usize) -> (Vec<String>, bool) {
    let mut chain = Vec::new();
    let mut j = at;
    loop {
        if j == 0 {
            chain.clear();
            break;
        }
        j -= 1;
        if s[j].id {
            chain.push(s[j].t.clone());
        } else {
            chain.clear();
            break;
        }
        if j == 0 {
            break;
        }
        if s[j - 1].t == "." {
            j -= 1;
            continue;
        }
        break;
    }
    let deref = !chain.is_empty() && j > 0 && s[j - 1].t == "*";
    chain.reverse();
    (chain, deref)
}

/// Reads a field chain forward from `j` (skipping `&`/`mut`), for
/// `for … in &self.map` headers. Empty if the expression is a call.
fn chain_fwd(s: &[S], mut j: usize) -> Vec<String> {
    while j < s.len() && (s[j].t == "&" || s[j].t == "mut") {
        j += 1;
    }
    let mut chain = Vec::new();
    while j < s.len() && s[j].id {
        chain.push(s[j].t.clone());
        if j + 1 < s.len() && s[j + 1].t == "." {
            j += 2;
        } else {
            j += 1;
            break;
        }
    }
    // A trailing `(` means this was a method call, not a field path.
    if j < s.len() && s[j].t == "(" {
        chain.clear();
    }
    chain
}

const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "into_keys",
    "into_values",
    "retain",
];

/// Adapters that preserve order-dependence: keep scanning the chain.
const TRANSPARENT: &[&str] = &[
    "map",
    "filter",
    "filter_map",
    "flat_map",
    "copied",
    "cloned",
    "enumerate",
    "inspect",
    "chain",
    "take",
    "skip",
    "by_ref",
];

/// Terminals whose result cannot depend on iteration order.
const ORDER_OK: &[&str] = &["count", "any", "all", "min", "max", "is_empty", "len"];

const INTEGER_TYPES: &[&str] = &[
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize",
];

#[derive(Clone, Copy, Debug, Default)]
struct Bind {
    hash: bool,
    counter_ref: bool,
}

/// Per-function walker state for R6/R7.
pub(crate) struct FnWalker<'a> {
    pub path: &'a str,
    pub fidx: &'a FieldIndex,
    pub r6: bool,
    pub r7: bool,
    pub out: &'a mut Vec<Violation>,
    conds: Vec<Vec<String>>,
    guards: Vec<Vec<String>>,
    binds: Vec<(String, Bind)>,
}

impl<'a> FnWalker<'a> {
    pub fn new(
        path: &'a str,
        fidx: &'a FieldIndex,
        scope: Scope,
        out: &'a mut Vec<Violation>,
    ) -> Self {
        FnWalker {
            path,
            fidx,
            r6: scope.decision,
            r7: scope.accounting,
            out,
            conds: Vec::new(),
            guards: Vec::new(),
            binds: Vec::new(),
        }
    }

    /// Walks a function: seeds parameter bindings, then walks the body.
    pub fn walk_fn(&mut self, params: Option<&[Tree]>, body: &[Tree]) {
        if let Some(p) = params {
            for f in super::items::parse_fields_of(p) {
                let hash = f.ty.contains("HashMap") || f.ty.contains("HashSet");
                self.binds.push((
                    f.name,
                    Bind {
                        hash,
                        counter_ref: false,
                    },
                ));
            }
        }
        self.walk_block(body);
        self.conds.clear();
        self.guards.clear();
        self.binds.clear();
    }

    fn lookup_bind(&self, name: &str) -> Bind {
        self.binds
            .iter()
            .rev()
            .find(|(n, _)| n == name)
            .map(|&(_, b)| b)
            .unwrap_or_default()
    }

    /// Whether a receiver chain resolves to hash-iterable storage.
    fn hashy(&self, chain: &[String]) -> bool {
        let Some(comp) = chain.last() else {
            return false;
        };
        if chain.len() == 1 {
            self.lookup_bind(comp).hash
        } else {
            self.fidx.lookup(self.path, comp).hash
        }
    }

    /// Classifies the RHS of a `let` from its scanned tokens after `=`.
    fn classify_init(&self, s: &[S], eq: usize, full_text: &str) -> Bind {
        let init = &s[eq + 1..];
        let has_collect = init.iter().any(|t| t.id && t.t == "collect");
        let names_hash_ty = full_text.contains("HashMap") || full_text.contains("HashSet");
        let hash = if has_collect {
            // Collected result: hash only if collected *into* a hash type.
            names_hash_ty
        } else {
            // Direct alias/constructor: `&self.jobs`, `HashMap::new()`.
            let last_id = init.iter().rev().find(|t| t.id);
            let aliases_hash_field = last_id.is_some_and(|t| {
                self.fidx.lookup(self.path, &t.t).hash || self.lookup_bind(&t.t).hash
            });
            names_hash_ty || aliases_hash_field
        };
        let counter_ref = init.iter().any(|t| {
            let c = self.fidx.lookup(self.path, &t.t);
            t.id && (c.counter || c.counter_map)
        });
        Bind { hash, counter_ref }
    }

    /// Extracts bindings from a control header containing `let`
    /// (`if let Some(r) = …`, `while let …`): pattern idents bind to the
    /// RHS classification.
    fn header_let_binds(&mut self, s: &[S], text: &str) {
        let Some(let_at) = s.iter().position(|t| t.t == "let") else {
            return;
        };
        let Some(eq_rel) = s[let_at..].iter().position(|t| t.t == "=") else {
            return;
        };
        let eq = let_at + eq_rel;
        let bind = self.classify_init(s, eq, text);
        for t in &s[let_at + 1..eq] {
            if t.id && t.t.starts_with(|c: char| c.is_ascii_lowercase()) && t.t != "mut" {
                self.binds.push((t.t.clone(), bind));
            }
        }
    }

    fn walk_block(&mut self, children: &[Tree]) {
        let stmts = super::tree::split_stmts(children);
        // Flat texts of each statement, for collected-then-sorted lookahead.
        let texts: Vec<String> = stmts.iter().map(|st| st.text.clone()).collect();
        let base_binds = self.binds.len();
        let base_guards = self.guards.len();
        for (si, stmt) in stmts.iter().enumerate() {
            // Split a trailing `{}` group off: its statements are walked
            // recursively; everything before it is this statement's header.
            let (head, block) = match stmt.trees.last() {
                Some(Tree::Group {
                    delim: '{',
                    children,
                    ..
                }) => (&stmt.trees[..stmt.trees.len() - 1], Some(children)),
                _ => (stmt.trees, None),
            };
            let s = scan(head);
            if self.r6 {
                self.check_iter(&s, &stmt.text, &texts[si + 1..]);
            }
            if self.r7 {
                self.check_sub(&s, &stmt.text);
            }
            // Record guards and bindings *after* checking the statement
            // itself (a guard does not exempt its own line).
            let first = s.first().map(|t| t.t.as_str()).unwrap_or("");
            if first.starts_with("assert") || first.starts_with("debug_assert") {
                self.guards
                    .push(s.iter().filter(|t| t.id).map(|t| t.t.clone()).collect());
            }
            if first == "let" {
                let name = s
                    .iter()
                    .skip(1)
                    .find(|t| t.id && t.t != "mut")
                    .map(|t| t.t.clone());
                if let (Some(name), Some(eq)) = (name, s.iter().position(|t| t.t == "=")) {
                    let bind = self.classify_init(&s, eq, &stmt.text);
                    self.binds.push((name, bind));
                }
            }
            if let Some(block) = block {
                let inner_binds = self.binds.len();
                let is_cond = first == "if"
                    || first == "while"
                    || (first == "else" && s.iter().any(|t| t.t == "if"));
                if s.iter().any(|t| t.t == "let") && first != "let" {
                    self.header_let_binds(&s, &stmt.text);
                }
                if is_cond {
                    self.conds.push(s.iter().map(|t| t.t.clone()).collect());
                }
                self.walk_block(block);
                if is_cond {
                    self.conds.pop();
                }
                self.binds.truncate(inner_binds);
            }
        }
        self.binds.truncate(base_binds);
        self.guards.truncate(base_guards);
    }

    // -- R6 ---------------------------------------------------------------

    fn check_iter(&mut self, s: &[S], stmt_text: &str, later: &[String]) {
        // Method-call iteration: `recv.iter()`, `recv.values_mut()`, …
        for i in 0..s.len() {
            if !(s[i].id && ITER_METHODS.contains(&s[i].t.as_str())) {
                continue;
            }
            if i == 0 || s[i - 1].t != "." {
                continue;
            }
            if s.get(i + 1).is_none_or(|n| n.t != "(") {
                continue;
            }
            let (chain, _) = chain_back(s, i - 1);
            if chain.is_empty() || !self.hashy(&chain) {
                continue;
            }
            if s[i].t != "retain" && self.escaped(s, i, stmt_text, later) {
                continue;
            }
            let m = &s[i].t;
            self.out.push(Violation {
                file: self.path.to_string(),
                line: s[i].line + 1,
                rule: R6,
                message: format!(
                    "`{}.{m}()` iterates seeded-hash storage in a decision path; \
                     collect-and-sort, use a BTreeMap, or allowlist with justification",
                    chain.join(".")
                ),
            });
        }
        // `for pat in &self.map { … }` headers.
        if s.first().is_some_and(|t| t.t == "for") {
            if let Some(in_at) = s.iter().position(|t| t.t == "in") {
                let chain = chain_fwd(s, in_at + 1);
                if !chain.is_empty() && self.hashy(&chain) {
                    self.out.push(Violation {
                        file: self.path.to_string(),
                        line: s[in_at].line + 1,
                        rule: R6,
                        message: format!(
                            "`for … in {}` iterates seeded-hash storage in a decision path; \
                             collect-and-sort or use a BTreeMap",
                            chain.join(".")
                        ),
                    });
                }
            }
        }
    }

    /// Whether the chain following the iteration call at `i` ends in an
    /// order-insensitive terminal, or is collected and sorted afterwards.
    fn escaped(&self, s: &[S], i: usize, stmt_text: &str, later: &[String]) -> bool {
        // Jump past the method's argument group.
        let mut j = i + 1;
        let mut depth = 0i64;
        while j < s.len() {
            match s[j].t.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => {
                    depth -= 1;
                    if depth <= 0 {
                        j += 1;
                        break;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        loop {
            if j + 1 >= s.len() || s[j].t != "." || !s[j + 1].id {
                return false; // chain ended without an order-safe terminal
            }
            let m = s[j + 1].t.clone();
            j += 2;
            // Optional turbofish: `::<…>`.
            let mut turbofish = String::new();
            if s.get(j).is_some_and(|t| t.t == "::") && s.get(j + 1).is_some_and(|t| t.t == "<") {
                let mut angle = 0i64;
                j += 1;
                while j < s.len() {
                    match s[j].t.as_str() {
                        "<" => angle += 1,
                        ">" => {
                            angle -= 1;
                            if angle <= 0 {
                                j += 1;
                                break;
                            }
                        }
                        _ => {
                            turbofish.push_str(&s[j].t);
                            turbofish.push(' ');
                        }
                    }
                    j += 1;
                }
            }
            // Skip the call's argument group, if present.
            if s.get(j).is_some_and(|t| t.t == "(") {
                let mut depth = 0i64;
                while j < s.len() {
                    match s[j].t.as_str() {
                        "(" | "[" | "{" => depth += 1,
                        ")" | "]" | "}" => {
                            depth -= 1;
                            if depth <= 0 {
                                j += 1;
                                break;
                            }
                        }
                        _ => {}
                    }
                    j += 1;
                }
            }
            if TRANSPARENT.contains(&m.as_str()) {
                continue;
            }
            if ORDER_OK.contains(&m.as_str()) {
                return true;
            }
            if m == "sum" {
                // Integer sums commute exactly; float sums don't.
                return turbofish
                    .split_whitespace()
                    .any(|t| INTEGER_TYPES.contains(&t));
            }
            if m == "collect" {
                if turbofish.contains("BTree") || stmt_text.contains("BTree") {
                    return true;
                }
                // `let NAME … = ….collect();` followed by `NAME.sort…` in
                // the same block: the PR-4 cancellation pattern.
                let name = if stmt_text.starts_with("let ") {
                    scan_let_name(stmt_text)
                } else {
                    None
                };
                if let Some(name) = name {
                    let sorted = later
                        .iter()
                        .any(|t| t.starts_with(&format!("{name} . sort")));
                    if sorted {
                        return true;
                    }
                }
                return false;
            }
            return false; // unknown terminal: order-sensitivity unproven
        }
    }

    // -- R7 ---------------------------------------------------------------

    fn check_sub(&mut self, s: &[S], stmt_text: &str) {
        if stmt_text.contains("checked_sub") || stmt_text.contains("saturating_sub") {
            return;
        }
        for i in 0..s.len() {
            let sub_assign = s[i].t == "-=";
            // The `x = x - y` spelling of the same unchecked subtraction.
            let reassign = s[i].t == "=" && {
                let (chain, deref) = chain_back(s, i);
                !chain.is_empty() && rhs_repeats_lvalue(s, i, &chain, deref)
            };
            if !sub_assign && !reassign {
                continue;
            }
            let (chain, deref) = chain_back(s, i);
            let Some(comp) = chain.last().cloned() else {
                continue;
            };
            let is_counter = if deref {
                if chain.len() == 1 {
                    self.lookup_bind(&comp).counter_ref
                } else {
                    false
                }
            } else if chain.len() >= 2 {
                self.fidx.lookup(self.path, &comp).counter
            } else {
                false // bare locals are not struct accounting state
            };
            if !is_counter || self.sub_guarded(&comp) {
                continue;
            }
            self.out.push(Violation {
                file: self.path.to_string(),
                line: s[i].line + 1,
                rule: R7,
                message: format!(
                    "unchecked subtraction on unsigned counter `{}`; use checked_sub/saturating_sub \
                     or precede with a debug_assert naming `{comp}`",
                    chain.join(".")
                ),
            });
        }
    }

    /// Whether `comp` is protected by a preceding assert in this or an
    /// enclosing block, or by an enclosing comparison condition naming it.
    fn sub_guarded(&self, comp: &str) -> bool {
        if self.guards.iter().any(|g| g.iter().any(|t| t == comp)) {
            return true;
        }
        self.conds.iter().any(|c| {
            c.iter().any(|t| t == comp)
                && c.iter().any(|t| {
                    matches!(t.as_str(), ">" | ">=" | "!=" | "<" | "<=") || t == "checked_sub"
                })
        })
    }
}

/// The bound name of a flattened `let` statement text
/// (`let mut kuids : … = …`).
fn scan_let_name(text: &str) -> Option<String> {
    let mut words = text.split_whitespace();
    let _let = words.next()?;
    let mut w = words.next()?;
    if w == "mut" {
        w = words.next()?;
    }
    let name: String = w
        .chars()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect();
    if name.is_empty() {
        None
    } else {
        Some(name)
    }
}

/// Whether the tokens after the `=` at `eq` repeat the lvalue chain and then
/// subtract (`self.len = self.len - 1`).
fn rhs_repeats_lvalue(s: &[S], eq: usize, chain: &[String], deref: bool) -> bool {
    let mut expect: Vec<String> = Vec::new();
    if deref {
        expect.push("*".into());
    }
    for (k, c) in chain.iter().enumerate() {
        if k > 0 {
            expect.push(".".into());
        }
        expect.push(c.clone());
    }
    expect.push("-".into());
    s[eq + 1..]
        .iter()
        .take(expect.len())
        .map(|t| t.t.as_str())
        .eq(expect.iter().map(String::as_str))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::items::{collect_items, Items};
    use crate::analysis::tree::parse;
    use crate::lint::tokenize;

    fn analyze_snippet(path: &str, src: &str) -> Vec<Violation> {
        let lines = tokenize(src);
        let trees = parse(&lines);
        let mut items = Items::default();
        collect_items(&trees, false, &mut items);
        let mut fidx = FieldIndex::default();
        fidx.add_structs(path, &items.structs);
        let scope = scope_of(path);
        let mut out = Vec::new();
        let toks = crate::analysis::tree::lex(&lines);
        let mask = crate::lint::test_mask(&lines);
        token_rules(path, &lines, &toks, &mask, scope, &mut out);
        for f in &items.fns {
            if f.in_test {
                continue;
            }
            if let Some(body) = f.body {
                let mut w = FnWalker::new(path, &fidx, scope, &mut out);
                w.walk_fn(f.params, body);
            }
        }
        out
    }

    const SCHED: &str = "crates/core/src/sched.rs";

    #[test]
    fn r6_flags_for_loop_over_hashmap_field() {
        let src = "struct S { clients: HashMap<u32, St> }\n\
            impl S {\n    fn pick(&self) {\n        for (c, s) in &self.clients { use_it(c, s); }\n    }\n}\n";
        let v = analyze_snippet(SCHED, src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, R6);
        assert!(v[0].message.contains("clients"));
    }

    #[test]
    fn r6_btreemap_field_is_clean() {
        let src = "struct S { clients: BTreeMap<u32, St> }\n\
            impl S {\n    fn pick(&self) {\n        for (c, s) in &self.clients { use_it(c, s); }\n    }\n}\n";
        assert!(analyze_snippet(SCHED, src).is_empty());
    }

    #[test]
    fn r6_count_and_integer_sum_escape() {
        let src = "struct S { clients: HashMap<u32, St> }\n\
            impl S {\n    fn n(&self) -> usize {\n        let a = self.clients.iter().filter(|x| x.ok()).count();\n        let b: u64 = self.clients.values().map(|s| s.n).sum::<u64>();\n        a + b as usize\n    }\n}\n";
        assert!(analyze_snippet(SCHED, src).is_empty());
    }

    #[test]
    fn r6_float_sum_is_flagged() {
        let src = "struct S { jobs: HashMap<u64, J> }\n\
            impl S {\n    fn w(&self) -> f64 {\n        self.jobs.values().map(|j| j.w).sum::<f64>()\n    }\n}\n";
        let v = analyze_snippet(SCHED, src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, R6);
    }

    #[test]
    fn r6_collect_then_sort_escapes_and_unsorted_does_not() {
        let sorted = "struct S { jobs: HashMap<u64, J> }\n\
            impl S {\n    fn c(&mut self) {\n        let mut ids: Vec<u64> = self.jobs.keys().copied().collect();\n        ids.sort_unstable();\n        for id in ids { self.kill(id); }\n    }\n}\n";
        assert!(analyze_snippet(SCHED, sorted).is_empty());
        let unsorted = "struct S { jobs: HashMap<u64, J> }\n\
            impl S {\n    fn c(&mut self) {\n        let mut ids: Vec<u64> = self.jobs.keys().copied().collect();\n        for id in ids { self.kill(id); }\n    }\n}\n";
        let v = analyze_snippet(SCHED, unsorted);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, R6);
    }

    #[test]
    fn r6_collect_into_btreemap_escapes() {
        let src = "struct S { jobs: HashMap<u64, J> }\n\
            impl S {\n    fn c(&self) -> BTreeMap<u64, u32> {\n        self.jobs.iter().map(|(k, v)| (*k, v.n)).collect::<BTreeMap<u64, u32>>()\n    }\n}\n";
        assert!(analyze_snippet(SCHED, src).is_empty());
    }

    #[test]
    fn r6_retain_always_flags() {
        let src = "struct S { jobs: HashMap<u64, J> }\n\
            impl S {\n    fn c(&mut self, id: u64) {\n        self.jobs.retain(|_, j| j.id != id);\n    }\n}\n";
        let v = analyze_snippet(SCHED, src);
        assert_eq!(v.len(), 1, "{v:?}");
    }

    #[test]
    fn r6_binding_alias_of_hash_field_is_tracked() {
        let src = "struct S { jobs: HashMap<u64, J> }\n\
            impl S {\n    fn c(&self) {\n        let m = &self.jobs;\n        for j in m.values() { go(j); }\n    }\n}\n";
        let v = analyze_snippet(SCHED, src);
        assert_eq!(v.len(), 1, "{v:?}");
    }

    #[test]
    fn r6_vec_receiver_is_clean() {
        let src = "struct S { nodes: Vec<N> }\n\
            impl S {\n    fn c(&self) -> f64 {\n        self.nodes.iter().map(|n| n.w).sum::<f64>()\n    }\n}\n";
        assert!(analyze_snippet(SCHED, src).is_empty());
    }

    #[test]
    fn r6_outside_decision_scope_is_ignored() {
        let src = "struct S { jobs: HashMap<u64, J> }\n\
            impl S {\n    fn w(&self) -> f64 { self.jobs.values().map(|j| j.w).sum::<f64>() }\n}\n";
        assert!(analyze_snippet("crates/telemetry/src/x.rs", src).is_empty());
    }

    #[test]
    fn r6_test_fns_are_exempt() {
        let src = "struct S { jobs: HashMap<u64, J> }\n\
            #[cfg(test)]\nmod tests {\n    fn t(s: &S) { for j in s.jobs.values() { go(j); } }\n}\n";
        // The field index sees `jobs`, but the fn is test-gated.
        assert!(analyze_snippet(SCHED, src).is_empty());
    }

    const DISP: &str = "crates/core/src/dispatcher.rs";

    #[test]
    fn r7_flags_bare_counter_sub() {
        let src = "struct S { outstanding: u64 }\n\
            impl S {\n    fn f(&mut self) {\n        self.outstanding -= 1;\n    }\n}\n";
        let v: Vec<_> = analyze_snippet(DISP, src)
            .into_iter()
            .filter(|v| v.rule == R7)
            .collect();
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].message.contains("outstanding"));
    }

    #[test]
    fn r7_debug_assert_before_sub_exempts() {
        let src = "struct S { outstanding: u64 }\n\
            impl S {\n    fn f(&mut self) {\n        debug_assert!(self.outstanding >= 1, \"underflow\");\n        self.outstanding -= 1;\n    }\n}\n";
        assert!(analyze_snippet(DISP, src).iter().all(|v| v.rule != R7));
    }

    #[test]
    fn r7_comparison_condition_exempts() {
        let src = "struct S { reserved: HashMap<u32, u64> }\n\
            impl S {\n    fn f(&mut self, k: u32) {\n        if let Some(r) = self.reserved.get_mut(&k) {\n            if *r > 0 {\n                *r -= 1;\n            }\n        }\n    }\n}\n";
        assert!(analyze_snippet(DISP, src).iter().all(|v| v.rule != R7));
    }

    #[test]
    fn r7_deref_of_counter_map_entry_is_flagged() {
        let src = "struct S { client_inflight: HashMap<u32, u64> }\n\
            impl S {\n    fn f(&mut self, c: u32) {\n        if let Some(n) = self.client_inflight.get_mut(&c) {\n            *n -= 1;\n        }\n    }\n}\n";
        let v: Vec<_> = analyze_snippet(DISP, src)
            .into_iter()
            .filter(|v| v.rule == R7)
            .collect();
        assert_eq!(v.len(), 1, "{v:?}");
    }

    #[test]
    fn r7_float_and_local_subs_are_exempt() {
        let src = "struct S { work_us: f64 }\n\
            impl S {\n    fn f(&mut self, d: f64) {\n        self.work_us -= d;\n        let mut left = 3;\n        left -= 1;\n        go(left);\n    }\n}\n";
        assert!(analyze_snippet(DISP, src).iter().all(|v| v.rule != R7));
    }

    #[test]
    fn r7_reassign_spelling_is_flagged() {
        let src = "struct S { len: usize }\n\
            impl S {\n    fn f(&mut self) {\n        self.len = self.len - 1;\n    }\n}\n";
        let v: Vec<_> = analyze_snippet(DISP, src)
            .into_iter()
            .filter(|v| v.rule == R7)
            .collect();
        assert_eq!(v.len(), 1, "{v:?}");
    }

    const CHAN: &str = "crates/channels/src/spsc.rs";

    #[test]
    fn r8_untagged_acquire_is_flagged_and_tagged_is_clean() {
        let bad = "fn f(a: &AtomicU64) -> u64 { a.load(Ordering::Acquire) }\n";
        let v = analyze_snippet(CHAN, bad);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, R8);
        let good = "fn f(a: &AtomicU64) -> u64 {\n    // acquire: pairs with the tail store\n    a.load(Ordering::Acquire)\n}\n";
        assert!(analyze_snippet(CHAN, good).is_empty());
    }

    #[test]
    fn r8_checks_each_ordering_of_compare_exchange() {
        let src = "fn f(a: &AtomicU64) {\n    // acqrel: justification for the success half only\n    let _ = a.compare_exchange(0, 1, Ordering::AcqRel, Ordering::Acquire);\n}\n";
        let v = analyze_snippet(CHAN, src);
        assert_eq!(v.len(), 1, "only the Acquire half is untagged: {v:?}");
        assert!(v[0].message.contains("Acquire"));
    }

    #[test]
    fn r8_relaxed_in_channels_is_r2_territory() {
        let src = "fn f(a: &AtomicU64) -> u64 { a.load(Ordering::Relaxed) }\n";
        let v = analyze_snippet(CHAN, src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "relaxed-needs-justification");
    }

    #[test]
    fn r8_non_atomic_load_is_ignored() {
        let src = "fn f(c: &Cache) -> u64 { c.load(7) }\n";
        assert!(analyze_snippet(CHAN, src).is_empty());
    }

    #[test]
    fn r9_partial_cmp_unwrap_flagged_and_total_cmp_clean() {
        let path = "crates/sim/src/stats.rs";
        let bad = "fn sort(v: &mut Vec<f64>) { v.sort_by(|a, b| a.partial_cmp(b).unwrap()); }\n";
        let v = analyze_snippet(path, bad);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, R9);
        let good = "fn sort(v: &mut Vec<f64>) { v.sort_by(f64::total_cmp); }\n";
        assert!(analyze_snippet(path, good).is_empty());
    }

    #[test]
    fn r9_partial_ord_impl_is_not_flagged() {
        let path = "crates/sim/src/event.rs";
        let src = "impl PartialOrd for K {\n    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {\n        Some(self.cmp(other))\n    }\n}\n";
        assert!(analyze_snippet(path, src).is_empty());
    }

    #[test]
    fn r9_max_by_with_unwrap_or_is_flagged() {
        let path = "crates/core/src/sched.rs";
        let src = "fn pick(v: &[f64]) -> Option<&f64> {\n    v.iter().max_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal))\n}\n";
        let v = analyze_snippet(path, src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, R9);
    }

    #[test]
    fn r6_random_state_is_flagged() {
        let src = "fn f() { let h = RandomState::new(); go(h); }\n";
        let v = analyze_snippet(SCHED, src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, R6);
    }
}
