//! Property-based tests for the compiler pipeline.

use proptest::prelude::*;

use paella_compiler::{compile, fuse, CostModel, Graph, Op, Shape};

/// A random feed-forward CNN-ish graph: a chain of ops with occasional
/// residual adds.
fn arb_graph() -> impl Strategy<Value = Graph> {
    proptest::collection::vec((0u8..6, 1u32..64, any::<bool>()), 1..30).prop_map(|layers| {
        let mut g = Graph::new();
        let mut cur = g.input(Shape::chw(3, 64, 64));
        let mut residual: Option<paella_compiler::NodeId> = None;
        for (kind, ch, take_residual) in layers {
            let next = match kind {
                0 => g.add(
                    Op::Conv2d {
                        out_channels: ch,
                        kernel: 3,
                        stride: 1,
                        pad: 1,
                    },
                    &[cur],
                ),
                1 => g.add(Op::Relu, &[cur]),
                2 => g.add(Op::BatchNorm, &[cur]),
                3 => g.add(Op::MaxPool { size: 2, stride: 1 }, &[cur]),
                4 => g.add(
                    Op::DepthwiseConv2d {
                        kernel: 3,
                        stride: 1,
                        pad: 1,
                    },
                    &[cur],
                ),
                _ => match residual {
                    Some(r) if g.shape(r) == g.shape(cur) => g.add(Op::Add, &[r, cur]),
                    _ => g.add(Op::Relu, &[cur]),
                },
            }
            .expect("ops are shape-safe by construction");
            if take_residual {
                residual = Some(next);
            }
            cur = next;
        }
        g
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Fusion covers every non-input node exactly once.
    #[test]
    fn fusion_is_a_partition(g in arb_graph()) {
        let groups = fuse(&g);
        let mut covered = std::collections::HashSet::new();
        for gr in &groups {
            prop_assert!(covered.insert(gr.anchor), "anchor duplicated");
            for &f in &gr.fused {
                prop_assert!(covered.insert(f), "fused node duplicated");
            }
        }
        let expected: std::collections::HashSet<_> = g
            .nodes
            .iter()
            .filter(|n| !matches!(n.op, Op::Input))
            .map(|n| n.id)
            .collect();
        prop_assert_eq!(covered, expected);
    }

    /// Compilation is deterministic and produces sane kernels.
    #[test]
    fn compile_deterministic_and_sane(g in arb_graph(), cal in 0.1f64..10.0) {
        let cm = CostModel::default();
        let a = compile("p", &g, &cm, cal);
        let b = compile("p", &g, &cm, cal);
        prop_assert_eq!(a.kernel_count(), b.kernel_count());
        for (ka, kb) in a.kernels().zip(b.kernels()) {
            prop_assert_eq!(ka.grid_blocks, kb.grid_blocks);
            prop_assert_eq!(ka.duration.base, kb.duration.base);
            prop_assert!(ka.grid_blocks >= 1);
            prop_assert!(ka.footprint.threads >= 1 && ka.footprint.threads <= 1024);
            prop_assert!(ka.duration.base.as_nanos() > 0);
        }
        prop_assert!(a.input_bytes > 0 && a.output_bytes > 0);
    }

    /// Scaling the calibration factor scales every kernel duration
    /// proportionally (modulo nanosecond rounding).
    #[test]
    fn calibration_is_linear(g in arb_graph(), k in 1.5f64..4.0) {
        let cm = CostModel::default();
        let base = compile("p", &g, &cm, 1.0);
        let scaled = compile("p", &g, &cm, k);
        for (a, b) in base.kernels().zip(scaled.kernels()) {
            let ratio = b.duration.base.as_nanos() as f64 / a.duration.base.as_nanos().max(1) as f64;
            prop_assert!((ratio - k).abs() / k < 0.01, "ratio {ratio} vs {k}");
        }
    }

    /// The instrumentation pass is uniform and reversible-by-copy.
    #[test]
    fn instrumentation_uniform(g in arb_graph()) {
        let m = compile("p", &g, &CostModel::default(), 1.0);
        let im = paella_compiler::instrumented(&m, paella_gpu::InstrumentationSpec::default());
        prop_assert!(m.kernels().all(|k| k.instrumentation.is_none()));
        prop_assert!(im.kernels().all(|k| k.instrumentation.is_some()));
        prop_assert_eq!(m.kernel_count(), im.kernel_count());
    }
}
