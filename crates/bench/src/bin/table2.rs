//! Table 2: the evaluation models, their calibrated uncontended execution
//! time versus the paper's measured "TVM Exec Time", and size.

use paella_bench::{device, f, header, row};
use paella_models::{measure_uncontended, registry, ModelZoo};

fn main() {
    header(
        "Table 2",
        "models used in the evaluation benchmarks (calibrated vs paper)",
    );
    row(&[
        "model".into(),
        "paper_exec_ms".into(),
        "measured_exec_ms".into(),
        "error_pct".into(),
        "size_mb".into(),
        "graph_nodes".into(),
        "kernels".into(),
    ]);
    let entries = registry();
    // One calibration + uncontended measurement per model. Each cell builds
    // its own zoo: calibration is deterministic per model, so per-cell zoos
    // and a shared one produce identical numbers.
    let grid = paella_bench::sweep::run_grid(entries.len(), |i| {
        let e = &entries[i];
        let mut zoo = ModelZoo::new(device());
        let model = zoo.get(e.name).clone();
        let measured = measure_uncontended(&model, &device());
        let target_ms = e.target_exec.as_millis_f64();
        let measured_ms = measured.as_millis_f64();
        let err = (measured_ms - target_ms).abs() / target_ms * 100.0;
        let nodes = (e.build)().len();
        [
            e.display.to_string(),
            f(target_ms),
            f(measured_ms),
            f(err),
            f(e.size_bytes as f64 / (1 << 20) as f64),
            nodes.to_string(),
            model.kernel_count().to_string(),
        ]
    });
    for r in &grid {
        row(r);
    }
}
