//! Figure 2: HoL blocking under job-by-job submission vs Paella dispatching
//! on a GTX 1660 SUPER (22 SMs, 32 hardware queues). Jobs are 8 kernels of
//! one 128-thread / 9-register block each (~300 µs per kernel): up to 176
//! independent blocks could run, but job-by-job submission fills the 32
//! queues with dependent chains and uses only 32/176 = 18 % of the device.

use paella_bench::{channels, f, header, row, scaled};

use paella_gpu::{blocks_per_sm, BlockFootprint, DeviceConfig, SmLimits};
use paella_models::synthetic;
use paella_sim::SimDuration;
use paella_workload::{generate, make_system, run_trace, Mix, SystemKey, WorkloadSpec};

fn main() {
    header(
        "Figure 2",
        "p99 JCT vs goodput: job-by-job submission vs Paella dispatching (GTX 1660 SUPER)",
    );
    // Sanity-check the §2.1 arithmetic before running anything.
    let fp = BlockFootprint {
        threads: 128,
        regs_per_thread: 9,
        shmem: 0,
    };
    let per_sm = blocks_per_sm(&fp, &SmLimits::TURING);
    assert_eq!(per_sm * 22, 176, "paper's concurrency bound");
    println!(
        "# concurrency bound: {} blocks; worst-case HoL utilization 32/176 = 18%",
        per_sm * 22
    );

    row(&[
        "system".into(),
        "offered_jobs_per_s".into(),
        "goodput_jobs_per_s".into(),
        "p99_jct_us".into(),
    ]);
    let n = scaled(3_000);
    let rates = [
        2_000.0, 5_000.0, 8_000.0, 11_000.0, 13_000.0, 16_000.0, 20_000.0, 25_000.0, 30_000.0,
        35_000.0,
    ];
    let keys = [SystemKey::PaellaMsJbj, SystemKey::Paella];
    // Grid: system × offered rate, one self-contained sim per cell.
    let grid = paella_bench::sweep::run_grid(keys.len() * rates.len(), |i| {
        let key = keys[i / rates.len()];
        let rate = rates[i % rates.len()];
        let label = match key {
            SystemKey::PaellaMsJbj => "job-by-job",
            _ => "paella",
        };
        let mut sys = make_system(key, DeviceConfig::gtx_1660_super(), channels(), 7);
        let m = sys.register_model(&synthetic::fig2_job());
        let spec = WorkloadSpec {
            clients: 16,
            ..WorkloadSpec::steady(rate, n)
        };
        let arrivals = generate(&spec, &Mix::single(m));
        let mut stats = run_trace(sys.as_mut(), &arrivals, n / 10);
        [
            label.to_string(),
            f(rate),
            f(stats.throughput),
            f(stats.p99_us()),
        ]
    });
    for r in &grid {
        row(r);
    }

    // Ablation (DESIGN.md): the §6 lookahead slack B. With single-block
    // kernels the fit-based predicate alone keeps the queues primed, so the
    // sweep uses device-filling multi-block kernels — the regime where too
    // little slack starves the device during the notification round trip.
    println!("\n# ablation: lookahead slack B (6x 320-block kernels per job, T4, overload)");
    row(&[
        "B_blocks".into(),
        "goodput_jobs_per_s".into(),
        "p99_jct_us".into(),
    ]);
    let big = synthetic::uniform_job("b-sweep", 6, SimDuration::from_micros(150), 320);
    let slacks = [0u64, 8, 24, 88, 320, 640];
    let ablation = paella_bench::sweep::run_grid(slacks.len(), |i| {
        let b = slacks[i];
        let mut cfg = paella_core::DispatcherConfig::paella();
        cfg.lookahead_blocks = b;
        let mut sys = paella_core::Dispatcher::new(
            DeviceConfig::tesla_t4(),
            channels(),
            Box::new(paella_core::SrptDeficitScheduler::new(Some(2_000.0))),
            cfg,
            7,
        );
        let m = paella_core::ServingSystem::register_model(&mut sys, &big);
        let spec = WorkloadSpec {
            clients: 16,
            ..WorkloadSpec::steady(3_000.0, n / 2)
        };
        let arrivals = generate(&spec, &Mix::single(m));
        let mut stats = run_trace(&mut sys, &arrivals, n / 20);
        [b.to_string(), f(stats.throughput), f(stats.p99_us())]
    });
    for r in &ablation {
        row(r);
    }
}
