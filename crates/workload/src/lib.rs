#![warn(missing_docs)]

//! # paella-workload
//!
//! Workload generation and the experiment harness:
//!
//! * [`gen`] — open-loop lognormal arrival traces (σ ∈ {1.5, 2}, §7) over
//!   weighted model mixes, pre-generated so every system sees the same
//!   trace.
//! * [`runner`] — drives any [`paella_core::ServingSystem`] through a trace
//!   and reduces completions to throughput / p99 / mean JCT; load sweeps for
//!   the Fig. 11/12 curves.
//! * [`breakdown`] — the Fig. 10 latency-breakdown averaging and the Fig. 14
//!   client CPU-utilization model.
//! * [`systems`] — a registry constructing every Table 3 system by key.
//! * [`cluster`] — the multi-node experiment: skewed-popularity mixes over a
//!   [`paella_cluster::Cluster`], per-policy goodput and tail latency.
//! * [`faults`] — the robustness experiment: the cluster workload under a
//!   seeded fault plan, reduced to goodput, successful-request p99, and the
//!   within-deadline fraction.
//! * [`llm`] — the autoregressive experiment: Zipf-tenant chat traffic over
//!   a [`paella_llm::LlmEngine`], reduced to TTFT/TPOT tails per
//!   iteration-formation policy.

pub mod breakdown;
pub mod cluster;
pub mod faults;
pub mod gen;
pub mod llm;
pub mod runner;
pub mod systems;

pub use breakdown::{average_breakdown, client_utilization, BreakdownUs};
pub use cluster::{run_cluster_point, smoke_models, ClusterExpResult, ClusterExpSpec};
pub use faults::{run_fault_point, FaultExpResult, FaultExpSpec};
pub use gen::{generate, Arrival, Mix, WorkloadSpec};
pub use llm::{generate_llm_trace, run_llm_point, smoke_llm_model, LlmExpResult, LlmExpSpec};
pub use runner::{load_sweep, run_trace, RunStats, SweepPoint};
pub use systems::{make_system, SystemKey};
