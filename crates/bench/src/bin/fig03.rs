//! Figure 3: average serving-platform overhead of a single batch of
//! requests to the Triton-like server, as a percentage of the CUDA
//! execution time (kernels + memcpys), for batch sizes 1 and 64.

use paella_baselines::{Triton, TritonConfig};
use paella_bench::{channels, device, f, header, row, zoo};
use paella_core::{ClientId, InferenceRequest, ServingSystem};
use paella_sim::SimTime;

const MODELS: [&str; 7] = [
    "densenet",
    "googlenet",
    "gpt2",
    "mobilenetv2",
    "resnet50",
    "vgg16",
    "yolov5",
];

fn overhead_pct(model_name: &str, batch: usize) -> f64 {
    let mut zoo = zoo();
    let model = zoo.get(model_name).clone();
    // The paper submits the entire batch immediately (one pre-formed
    // batch-`b` tensor) to elide the dynamic batcher's configurable wait.
    let submitted = Triton::batched_model(&model, batch);
    let mut triton = Triton::new(device(), channels(), TritonConfig::default(), 3);
    let id = triton.register_model(&submitted);
    triton.submit(InferenceRequest {
        client: ClientId(0),
        model: id,
        submitted_at: SimTime::ZERO,
    });
    triton.run_to_idle();
    let done = triton.drain_completions();
    assert_eq!(done.len(), 1);
    // Overhead = end-to-end latency minus CUDA work, relative to CUDA work.
    let c = &done[0];
    let device_us = c.breakdown.device.as_micros_f64();
    let total_us = c.jct().as_micros_f64();
    (total_us - device_us) / device_us * 100.0
}

fn main() {
    header(
        "Figure 3",
        "Triton serving overhead as % of CUDA execution time (batch 1 and 64)",
    );
    row(&[
        "model".into(),
        "batch1_overhead_pct".into(),
        "batch64_overhead_pct".into(),
    ]);
    // Grid: model × batch size, each cell an isolated Triton run.
    let grid = paella_bench::sweep::run_grid(MODELS.len() * 2, |i| {
        let m = MODELS[i / 2];
        let batch = if i % 2 == 0 { 1 } else { 64 };
        overhead_pct(m, batch)
    });
    for (i, m) in MODELS.iter().enumerate() {
        row(&[m.to_string(), f(grid[2 * i]), f(grid[2 * i + 1])]);
    }
}
