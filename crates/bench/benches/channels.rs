//! Microbenchmarks for the lock-free channels: the critical-path costs the
//! paper's design depends on (sub-microsecond shared-memory hops).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use paella_channels::{notif_queue, ring, Notification, PopError};

fn bench_spsc(c: &mut Criterion) {
    let mut g = c.benchmark_group("spsc");
    g.throughput(Throughput::Elements(1));
    g.bench_function("push_pop", |b| {
        let (mut tx, mut rx) = ring::<u64>(1024);
        b.iter(|| {
            tx.push(42).unwrap();
            std::hint::black_box(rx.pop().unwrap());
        });
    });
    g.bench_function("pop_empty", |b| {
        let (_tx, mut rx) = ring::<u64>(64);
        b.iter(|| {
            std::hint::black_box(matches!(rx.pop(), Err(PopError::Empty)));
        });
    });
    g.finish();
}

fn bench_notif_codec(c: &mut Criterion) {
    let mut g = c.benchmark_group("notif_codec");
    g.throughput(Throughput::Elements(1));
    g.bench_function("encode", |b| {
        let n = Notification::placement(17, 12345, 16);
        b.iter(|| std::hint::black_box(n.encode()));
    });
    g.bench_function("decode", |b| {
        let w = Notification::completion(3, 999, 8).encode();
        b.iter(|| std::hint::black_box(Notification::decode(std::hint::black_box(w))));
    });
    g.finish();
}

fn bench_notifq(c: &mut Criterion) {
    let mut g = c.benchmark_group("notifq");
    g.throughput(Throughput::Elements(1));
    g.bench_function("post_poll", |b| {
        let (w, mut r) = notif_queue(4096);
        b.iter(|| {
            w.post(Notification::placement(1, 7, 16));
            std::hint::black_box(r.poll().unwrap());
        });
    });
    g.bench_function("drain_batch_64", |b| {
        let (w, mut r) = notif_queue(4096);
        let mut out = Vec::with_capacity(64);
        b.iter_batched(
            || {
                for k in 0..64 {
                    w.post(Notification::placement(1, k, 16));
                }
            },
            |()| {
                out.clear();
                std::hint::black_box(r.drain_into(&mut out));
            },
            BatchSize::SmallInput,
        );
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_spsc, bench_notif_codec, bench_notifq
}
criterion_main!(benches);
