//! Core identifiers and request/response types of the Paella service.

use paella_sim::{SimDuration, SimTime};

/// Identifier of a registered model in the dispatcher's library.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ModelId(pub u32);

/// Identifier of a client connection (one shared-memory region each).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ClientId(pub u32);

/// Identifier of an inference job (the `req_id` returned by
/// `paella.predict`).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct JobId(pub u64);

/// An inference request as written to the client→Paella shared-memory ring:
/// a model name (pre-resolved to an id), the shared buffer, and options.
/// No marshalling — the paper's `predict(model, len, io_ptr, options)`.
#[derive(Clone, Copy, Debug)]
pub struct InferenceRequest {
    /// Submitting client.
    pub client: ClientId,
    /// Which model to run.
    pub model: ModelId,
    /// Time the client called `predict` (for end-to-end accounting).
    pub submitted_at: SimTime,
}

/// Per-request latency breakdown in the Fig. 10 categories.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LatencyBreakdown {
    /// Client-side send + receive path (predict call, result pickup).
    pub client_send_recv: SimDuration,
    /// Channel/communication latency (rings, notifications, launch paths).
    pub communication: SimDuration,
    /// Time spent queued or waiting on scheduling decisions.
    pub queuing_scheduling: SimDuration,
    /// Serving-framework CPU time (adaptor, dispatch loop, bookkeeping).
    pub framework: SimDuration,
    /// Pure device time (kernels + memcpys on the critical path).
    pub device: SimDuration,
}

impl LatencyBreakdown {
    /// Total non-device overhead.
    pub fn overhead(&self) -> SimDuration {
        self.client_send_recv + self.communication + self.queuing_scheduling + self.framework
    }

    /// Total end-to-end latency.
    pub fn total(&self) -> SimDuration {
        self.overhead() + self.device
    }
}

/// A point-in-time load summary a serving system exports to layers above it
/// (a cluster router, an autoscaler). The `remaining_work` field is the
/// dispatcher's SRPT signal — the profiled estimated-remaining-time summed
/// over everything it has accepted — which is exactly the quantity Paella's
/// scheduler already maintains per job.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LoadSignal {
    /// Requests accepted (`submit`) but not yet ingested off the ring.
    pub queued: u64,
    /// Jobs currently in flight inside the system.
    pub inflight: u64,
    /// Estimated remaining device work across queued + in-flight jobs.
    pub remaining_work: SimDuration,
    /// KV-cache pages currently resident on the device, for systems with a
    /// paged KV memory budget (autoregressive serving). Zero for systems
    /// without one.
    pub kv_pages_used: u64,
    /// Total KV-cache pages on the device; zero means "no KV budget" and
    /// makes [`LoadSignal::kv_pressure_bp`] report zero pressure.
    pub kv_pages_total: u64,
}

impl LoadSignal {
    /// Total requests the system is holding (queued + in flight).
    pub fn outstanding(&self) -> u64 {
        self.queued + self.inflight
    }

    /// KV-cache occupancy in basis points (0..=10000). Integer math so
    /// identical states compare identically everywhere; saturates at 10000
    /// even if accounting transiently reports used > total.
    pub fn kv_pressure_bp(&self) -> u64 {
        if self.kv_pages_total == 0 {
            return 0;
        }
        ((u128::from(self.kv_pages_used) * 10_000) / u128::from(self.kv_pages_total)).min(10_000)
            as u64
    }
}

/// Why a request failed instead of completing (DESIGN §11).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FailureReason {
    /// The job's deadline passed before its last op finished; the
    /// dispatcher cancelled it and reclaimed its resources.
    DeadlineExceeded,
    /// Admission control refused the request: the load signal was at or
    /// above the shed watermark when it arrived.
    Shed,
    /// The submitting client disconnected (injected fault).
    Disconnected,
    /// A kernel faulted more times than the retry budget allows.
    RetryBudgetExhausted,
    /// The node holding the request crashed (the cluster tier may re-route
    /// and retry; standalone dispatchers report it terminally).
    NodeCrash,
}

impl FailureReason {
    /// Stable display name (telemetry labels, bench output).
    pub fn as_str(self) -> &'static str {
        match self {
            FailureReason::DeadlineExceeded => "deadline-exceeded",
            FailureReason::Shed => "shed",
            FailureReason::Disconnected => "disconnected",
            FailureReason::RetryBudgetExhausted => "retry-budget-exhausted",
            FailureReason::NodeCrash => "node-crash",
        }
    }
}

/// A request that terminated without a [`JobCompletion`].
#[derive(Clone, Copy, Debug)]
pub struct JobFailure {
    /// The failed request.
    pub request: InferenceRequest,
    /// Why it failed.
    pub reason: FailureReason,
    /// When the failure was decided.
    pub at: SimTime,
}

/// A finished job as reported back to the harness/client.
#[derive(Clone, Copy, Debug)]
pub struct JobCompletion {
    /// The job.
    pub job: JobId,
    /// The request that spawned it.
    pub request: InferenceRequest,
    /// When the *almost finished* wake-up was sent (0 if never).
    pub almost_finished_at: Option<SimTime>,
    /// When the final device op finished.
    pub device_done_at: SimTime,
    /// When the result became visible to the client (end of JCT).
    pub client_visible_at: SimTime,
    /// Latency breakdown.
    pub breakdown: LatencyBreakdown,
}

impl JobCompletion {
    /// Job completion time: client-visible completion minus submission.
    pub fn jct(&self) -> SimDuration {
        self.client_visible_at
            .saturating_since(self.request.submitted_at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_sums() {
        let b = LatencyBreakdown {
            client_send_recv: SimDuration::from_micros(5),
            communication: SimDuration::from_micros(10),
            queuing_scheduling: SimDuration::from_micros(20),
            framework: SimDuration::from_micros(15),
            device: SimDuration::from_micros(1000),
        };
        assert_eq!(b.overhead(), SimDuration::from_micros(50));
        assert_eq!(b.total(), SimDuration::from_micros(1050));
    }

    #[test]
    fn jct_saturates() {
        let c = JobCompletion {
            job: JobId(1),
            request: InferenceRequest {
                client: ClientId(0),
                model: ModelId(0),
                submitted_at: SimTime::from_micros(100),
            },
            almost_finished_at: None,
            device_done_at: SimTime::from_micros(90),
            client_visible_at: SimTime::from_micros(150),
            breakdown: LatencyBreakdown::default(),
        };
        assert_eq!(c.jct(), SimDuration::from_micros(50));
    }
}
