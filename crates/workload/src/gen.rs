//! Open-loop workload generation.
//!
//! The paper's request inter-arrival pattern is lognormal with σ = 2
//! (bursty) or σ = 1.5 (less bursty) and a mean µ set by the offered load
//! (§7 Methodology). A workload is a pre-generated list of `(time, model,
//! client)` arrivals so every system under test sees the identical trace.

use paella_core::{ClientId, ModelId};
use paella_sim::dist::{Distribution, LogNormal};
use paella_sim::rng::Xoshiro256pp;
use paella_sim::{SimDuration, SimTime};

/// One pre-generated request arrival.
#[derive(Clone, Copy, Debug)]
pub struct Arrival {
    /// Wall-clock submission time.
    pub at: SimTime,
    /// Model to run.
    pub model: ModelId,
    /// Submitting client.
    pub client: ClientId,
}

/// A weighted mix of models.
#[derive(Clone, Debug)]
pub struct Mix {
    entries: Vec<(ModelId, f64)>,
    total: f64,
}

impl Mix {
    /// A uniform mix over `models`.
    pub fn uniform(models: &[ModelId]) -> Self {
        Mix::weighted(models.iter().map(|&m| (m, 1.0)).collect())
    }

    /// A single-model workload.
    pub fn single(model: ModelId) -> Self {
        Mix::weighted(vec![(model, 1.0)])
    }

    /// A skewed-popularity mix: model `i` (in the given order) gets weight
    /// `1 / (i+1)^s` — the Zipf-like distribution of real serving traffic,
    /// where a few hot models dominate and a long tail stays warm. `s = 0`
    /// degenerates to uniform; production traces typically look like
    /// `s ∈ [0.9, 1.5]`.
    ///
    /// # Panics
    ///
    /// Panics if `models` is empty or `s` is negative.
    pub fn zipf(models: &[ModelId], s: f64) -> Self {
        assert!(s >= 0.0, "zipf exponent must be non-negative");
        Mix::weighted(
            models
                .iter()
                .enumerate()
                .map(|(i, &m)| (m, 1.0 / ((i + 1) as f64).powf(s)))
                .collect(),
        )
    }

    /// An arbitrary weighted mix.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is empty or any weight is non-positive.
    pub fn weighted(entries: Vec<(ModelId, f64)>) -> Self {
        assert!(!entries.is_empty(), "empty mix");
        assert!(
            entries.iter().all(|&(_, w)| w > 0.0),
            "weights must be positive"
        );
        let total = entries.iter().map(|&(_, w)| w).sum();
        Mix { entries, total }
    }

    /// Samples one model.
    pub fn sample(&self, rng: &mut Xoshiro256pp) -> ModelId {
        let mut x = rng.next_f64() * self.total;
        for &(m, w) in &self.entries {
            if x < w {
                return m;
            }
            x -= w;
        }
        self.entries.last().expect("non-empty").0
    }

    /// The models in the mix.
    pub fn models(&self) -> Vec<ModelId> {
        self.entries.iter().map(|&(m, _)| m).collect()
    }
}

/// Workload parameters.
#[derive(Clone, Debug)]
pub struct WorkloadSpec {
    /// Target offered load in requests per second (sets the lognormal mean).
    pub rate_per_sec: f64,
    /// Burstiness: the lognormal σ (the paper uses 1.5 and 2.0).
    pub sigma: f64,
    /// Number of requests to generate.
    pub requests: usize,
    /// Number of distinct clients, assigned round-robin.
    pub clients: u32,
    /// RNG seed.
    pub seed: u64,
}

impl WorkloadSpec {
    /// A bursty (σ = 2) workload.
    pub fn bursty(rate_per_sec: f64, requests: usize) -> Self {
        WorkloadSpec {
            rate_per_sec,
            sigma: 2.0,
            requests,
            clients: 8,
            seed: 0xA11CE,
        }
    }

    /// A less-bursty (σ = 1.5) workload.
    pub fn steady(rate_per_sec: f64, requests: usize) -> Self {
        WorkloadSpec {
            rate_per_sec,
            sigma: 1.5,
            requests,
            clients: 8,
            seed: 0xA11CE,
        }
    }
}

/// Generates the arrival trace for `spec` over `mix`.
///
/// # Panics
///
/// Panics if the rate is non-positive.
pub fn generate(spec: &WorkloadSpec, mix: &Mix) -> Vec<Arrival> {
    assert!(spec.rate_per_sec > 0.0, "rate must be positive");
    let mean_gap_us = 1.0e6 / spec.rate_per_sec;
    let gap = LogNormal::with_mean(mean_gap_us, spec.sigma);
    let mut rng = Xoshiro256pp::seed_from_u64(spec.seed);
    let mut t = SimTime::ZERO;
    let mut out = Vec::with_capacity(spec.requests);
    for i in 0..spec.requests {
        let g = gap.sample(&mut rng);
        t = t.saturating_add(SimDuration::from_micros_f64(g));
        out.push(Arrival {
            at: t,
            model: mix.sample(&mut rng),
            client: ClientId(i as u32 % spec.clients.max(1)),
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arrivals_are_sorted_and_counted() {
        let spec = WorkloadSpec::bursty(1_000.0, 500);
        let arr = generate(&spec, &Mix::single(ModelId(0)));
        assert_eq!(arr.len(), 500);
        for w in arr.windows(2) {
            assert!(w[0].at <= w[1].at);
        }
    }

    #[test]
    fn empirical_rate_matches_target() {
        let spec = WorkloadSpec {
            sigma: 1.5,
            ..WorkloadSpec::steady(2_000.0, 20_000)
        };
        let arr = generate(&spec, &Mix::single(ModelId(0)));
        let span = arr.last().unwrap().at.as_secs_f64();
        let rate = arr.len() as f64 / span;
        assert!(
            (rate - 2_000.0).abs() / 2_000.0 < 0.1,
            "rate {rate} should be near 2000 req/s"
        );
    }

    #[test]
    fn bursty_has_higher_dispersion() {
        let gaps = |sigma: f64| {
            let spec = WorkloadSpec {
                sigma,
                ..WorkloadSpec::bursty(1_000.0, 20_000)
            };
            let arr = generate(&spec, &Mix::single(ModelId(0)));
            let mut gs: Vec<f64> = arr
                .windows(2)
                .map(|w| (w[1].at - w[0].at).as_micros_f64())
                .collect();
            gs.sort_by(f64::total_cmp);
            // p99 / median as a dispersion measure.
            gs[(gs.len() * 99) / 100] / gs[gs.len() / 2].max(1e-9)
        };
        assert!(gaps(2.0) > gaps(1.5) * 1.5, "σ=2 must be burstier");
    }

    #[test]
    fn mix_respects_weights() {
        let mix = Mix::weighted(vec![(ModelId(0), 3.0), (ModelId(1), 1.0)]);
        let mut rng = Xoshiro256pp::seed_from_u64(1);
        let n = 40_000;
        let zeros = (0..n)
            .filter(|_| mix.sample(&mut rng) == ModelId(0))
            .count();
        let frac = zeros as f64 / n as f64;
        assert!((frac - 0.75).abs() < 0.02, "weight-3:1 split, got {frac}");
    }

    #[test]
    fn clients_assigned_round_robin() {
        let spec = WorkloadSpec {
            clients: 3,
            ..WorkloadSpec::bursty(100.0, 9)
        };
        let arr = generate(&spec, &Mix::single(ModelId(0)));
        let ids: Vec<u32> = arr.iter().map(|a| a.client.0).collect();
        assert_eq!(ids, vec![0, 1, 2, 0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn deterministic_per_seed() {
        let spec = WorkloadSpec::bursty(500.0, 100);
        let a = generate(&spec, &Mix::single(ModelId(0)));
        let b = generate(&spec, &Mix::single(ModelId(0)));
        assert_eq!(
            a.iter().map(|x| x.at).collect::<Vec<_>>(),
            b.iter().map(|x| x.at).collect::<Vec<_>>()
        );
    }

    #[test]
    #[should_panic(expected = "weights must be positive")]
    fn zero_weight_rejected() {
        Mix::weighted(vec![(ModelId(0), 0.0)]);
    }
}
