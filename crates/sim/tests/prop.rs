//! Property-based tests for the simulation kernel.

use proptest::prelude::*;

use paella_sim::dist::Distribution;
use paella_sim::{EventQueue, LogNormal, Percentiles, SimDuration, SimTime, Xoshiro256pp};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Events always pop in non-decreasing time order, regardless of the
    /// schedule order, and ties resolve by insertion order.
    #[test]
    fn event_queue_pops_sorted(times in proptest::collection::vec(0u64..1_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule_at(SimTime::from_nanos(t), i);
        }
        let mut last_time = SimTime::ZERO;
        let mut seen_at_time: Vec<usize> = Vec::new();
        let mut popped = 0;
        while let Some((at, idx)) = q.pop() {
            prop_assert!(at >= last_time, "time must not go backwards");
            if at == last_time {
                if let Some(&prev) = seen_at_time.last() {
                    prop_assert!(idx > prev, "ties must pop in insertion order");
                }
                seen_at_time.push(idx);
            } else {
                seen_at_time.clear();
                seen_at_time.push(idx);
            }
            last_time = at;
            popped += 1;
        }
        prop_assert_eq!(popped, times.len());
    }

    /// Cancelling an arbitrary subset removes exactly those events.
    #[test]
    fn event_queue_cancel_subset(
        times in proptest::collection::vec(0u64..1_000, 1..100),
        cancel_mask in proptest::collection::vec(any::<bool>(), 1..100),
    ) {
        let mut q = EventQueue::new();
        let ids: Vec<_> = times
            .iter()
            .enumerate()
            .map(|(i, &t)| q.schedule_at(SimTime::from_nanos(t), i))
            .collect();
        let mut expected = times.len();
        for (id, &cancel) in ids.iter().zip(cancel_mask.iter().chain(std::iter::repeat(&false))) {
            if cancel {
                prop_assert!(q.cancel(*id));
                expected -= 1;
            }
        }
        let mut popped = 0;
        while q.pop().is_some() {
            popped += 1;
        }
        prop_assert_eq!(popped, expected);
    }

    /// Quantiles of a percentile collector match a naive sorted computation.
    #[test]
    fn percentiles_match_naive(xs in proptest::collection::vec(0.0f64..1e6, 1..500)) {
        let mut p = Percentiles::new();
        for &x in &xs {
            p.push(x);
        }
        let mut sorted = xs.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        prop_assert_eq!(p.quantile(0.0).unwrap(), sorted[0]);
        prop_assert_eq!(p.quantile(1.0).unwrap(), sorted[sorted.len() - 1]);
        let med = p.quantile(0.5).unwrap();
        prop_assert!(med >= sorted[0] && med <= sorted[sorted.len() - 1]);
    }

    /// Lognormal samples are strictly positive and finite for the σ range
    /// the paper uses.
    #[test]
    fn lognormal_samples_valid(seed in any::<u64>(), sigma in 0.1f64..3.0) {
        let d = LogNormal::with_mean(1_000.0, sigma);
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        for _ in 0..100 {
            let x = d.sample(&mut rng);
            prop_assert!(x.is_finite() && x > 0.0);
        }
    }

    /// Duration arithmetic survives float round-trips without drift beyond
    /// a nanosecond.
    #[test]
    fn duration_roundtrip(us in 0.0f64..1e9) {
        let d = SimDuration::from_micros_f64(us);
        let back = d.as_micros_f64();
        prop_assert!((back - us).abs() <= 0.001, "{us} vs {back}");
    }

    /// Identical seeds produce identical streams; different seeds differ.
    #[test]
    fn rng_determinism(seed in any::<u64>()) {
        let mut a = Xoshiro256pp::seed_from_u64(seed);
        let mut b = Xoshiro256pp::seed_from_u64(seed);
        for _ in 0..64 {
            prop_assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
