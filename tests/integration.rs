//! Cross-crate integration tests: the full pipeline from graph IR through
//! compilation, calibration, serving, and metrics, for every system in
//! Table 3.

use paella_channels::ChannelConfig;
use paella_gpu::DeviceConfig;
use paella_models::{measure_uncontended, registry, synthetic, ModelZoo};
use paella_sim::SimDuration;
use paella_workload::{generate, make_system, run_trace, Mix, SystemKey, WorkloadSpec};

fn device() -> DeviceConfig {
    DeviceConfig::tesla_t4()
}

#[test]
fn every_table2_model_calibrates_within_two_percent() {
    let mut zoo = ModelZoo::new(device());
    for e in registry().into_iter().filter(|e| e.in_table2) {
        let m = zoo.get(e.name).clone();
        let measured = measure_uncontended(&m, &device());
        let err = (measured.as_nanos() as f64 - e.target_exec.as_nanos() as f64).abs()
            / e.target_exec.as_nanos() as f64;
        assert!(
            err < 0.02,
            "{}: measured {measured} vs Table 2 {}",
            e.name,
            e.target_exec
        );
    }
}

#[test]
fn no_system_loses_or_duplicates_jobs() {
    let mut zoo = ModelZoo::new(device());
    let r18 = zoo.get("resnet18").clone();
    for key in SystemKey::ALL {
        let mut sys = make_system(key, device(), ChannelConfig::default(), 5);
        let id = sys.register_model(&r18);
        let spec = WorkloadSpec {
            clients: 4,
            ..WorkloadSpec::bursty(300.0, 120)
        };
        let arrivals = generate(&spec, &Mix::single(id));
        let stats = run_trace(sys.as_mut(), &arrivals, 0);
        assert_eq!(stats.completions.len(), 120, "{}", key.key());
        // Each job id appears exactly once.
        let mut jobs: Vec<u64> = stats.completions.iter().map(|c| c.job.0).collect();
        jobs.sort_unstable();
        jobs.dedup();
        assert_eq!(jobs.len(), 120, "{} duplicated completions", key.key());
        // Completion timestamps never precede submission.
        for c in &stats.completions {
            assert!(
                c.client_visible_at >= c.request.submitted_at,
                "{}",
                key.key()
            );
        }
    }
}

#[test]
fn full_runs_are_deterministic_across_repeats() {
    let run = || {
        let mut zoo = ModelZoo::new(device());
        let models = [zoo.get("resnet18").clone(), zoo.get("googlenet").clone()];
        let mut sys = make_system(SystemKey::Paella, device(), ChannelConfig::default(), 99);
        let ids: Vec<_> = models.iter().map(|m| sys.register_model(m)).collect();
        let spec = WorkloadSpec {
            clients: 4,
            ..WorkloadSpec::bursty(200.0, 150)
        };
        let arrivals = generate(&spec, &Mix::uniform(&ids));
        let stats = run_trace(sys.as_mut(), &arrivals, 0);
        stats
            .completions
            .iter()
            .map(|c| (c.job.0, c.client_visible_at.as_nanos()))
            .collect::<Vec<_>>()
    };
    assert_eq!(run(), run(), "same seed must give bit-identical timelines");
}

#[test]
fn paella_dominates_triton_on_tail_latency_under_load() {
    // The headline comparison at a load Triton cannot sustain.
    let mut zoo = ModelZoo::new(device());
    let table2 = zoo.table2();
    let mut results = Vec::new();
    for key in [SystemKey::Triton, SystemKey::Paella] {
        let mut sys = make_system(key, device(), ChannelConfig::default(), 5);
        let ids: Vec<_> = table2.iter().map(|m| sys.register_model(m)).collect();
        let spec = WorkloadSpec {
            clients: 8,
            ..WorkloadSpec::bursty(150.0, 300)
        };
        let arrivals = generate(&spec, &Mix::uniform(&ids));
        let mut stats = run_trace(sys.as_mut(), &arrivals, 30);
        results.push((key, stats.throughput, stats.p99_us()));
    }
    let (_, triton_tput, triton_p99) = results[0];
    let (_, paella_tput, paella_p99) = results[1];
    assert!(
        paella_tput > triton_tput,
        "Paella throughput {paella_tput} must exceed Triton {triton_tput}"
    );
    assert!(
        paella_p99 < triton_p99,
        "Paella p99 {paella_p99} must beat Triton {triton_p99}"
    );
}

#[test]
fn srpt_scheduling_protects_short_jobs() {
    // Fig. 12's phenomenon end to end: ResNet-18 tail latency under a mixed
    // load improves by multiples under Paella vs CUDA-MS.
    let mut zoo = ModelZoo::new(device());
    let short = zoo.get("resnet18").clone();
    let long = zoo.get("inceptionv3").clone();
    let mut p99 = Vec::new();
    for key in [SystemKey::CudaMs, SystemKey::Paella] {
        let mut sys = make_system(key, device(), ChannelConfig::default(), 5);
        let s = sys.register_model(&short);
        let l = sys.register_model(&long);
        let spec = WorkloadSpec {
            clients: 8,
            ..WorkloadSpec::steady(200.0, 400)
        };
        let arrivals = generate(&spec, &Mix::weighted(vec![(s, 19.7), (l, 1.0)]));
        let mut stats = run_trace(sys.as_mut(), &arrivals, 40);
        p99.push(stats.model_p99_us(s).expect("short jobs completed"));
    }
    assert!(
        p99[1] * 3.0 < p99[0],
        "short-job p99 must improve ≥3x: CUDA-MS {} vs Paella {}",
        p99[0],
        p99[1]
    );
}

#[test]
fn instrumentation_tracks_ground_truth_occupancy() {
    // The dispatcher's mirror drains exactly when the device does.
    let mut sys = make_system(SystemKey::Paella, device(), ChannelConfig::default(), 5);
    let id = sys.register_model(&synthetic::uniform_job(
        "probe",
        6,
        SimDuration::from_micros(150),
        64,
    ));
    let spec = WorkloadSpec {
        clients: 2,
        ..WorkloadSpec::steady(2_000.0, 60)
    };
    let arrivals = generate(&spec, &Mix::single(id));
    let stats = run_trace(sys.as_mut(), &arrivals, 0);
    assert_eq!(stats.completions.len(), 60);
}

#[test]
fn hybrid_wakeup_fires_before_completion() {
    let mut sys = make_system(SystemKey::Paella, device(), ChannelConfig::default(), 5);
    let id = sys.register_model(&synthetic::fig2_job());
    let spec = WorkloadSpec {
        clients: 1,
        ..WorkloadSpec::steady(100.0, 20)
    };
    let arrivals = generate(&spec, &Mix::single(id));
    let stats = run_trace(sys.as_mut(), &arrivals, 0);
    for c in &stats.completions {
        let wake = c.almost_finished_at.expect("almost-finished must fire");
        assert!(
            wake <= c.client_visible_at,
            "wakeup at {wake} after visibility {}",
            c.client_visible_at
        );
    }
}

#[test]
fn trends_hold_on_tesla_p100() {
    // §7 Methodology: "We also evaluated our system on a Tesla P100 but
    // omitted those results as the trends were identical." Check the two
    // headline trends on the Pascal part: Paella beats job-by-job submission
    // on the HoL workload, and SRPT protects short jobs.
    let p100 = DeviceConfig::tesla_p100();

    let makespan = |key: SystemKey| {
        let mut sys = make_system(key, p100.clone(), ChannelConfig::default(), 11);
        let id = sys.register_model(&synthetic::fig2_job());
        for j in 0..256u32 {
            sys.submit(paella_core::InferenceRequest {
                client: paella_core::ClientId(j % 8),
                model: id,
                submitted_at: paella_sim::SimTime::ZERO,
            });
        }
        sys.run_to_idle();
        let done = sys.drain_completions();
        assert_eq!(done.len(), 256);
        done.iter().map(|c| c.client_visible_at).max().unwrap()
    };
    let jbj = makespan(SystemKey::PaellaMsJbj);
    let paella = makespan(SystemKey::Paella);
    assert!(
        paella < jbj,
        "P100: Paella {paella} must beat job-by-job {jbj} on the HoL workload"
    );

    let mut zoo = ModelZoo::new(p100.clone());
    let short = zoo.get("resnet18").clone();
    let long = zoo.get("inceptionv3").clone();
    let mut p99 = Vec::new();
    for key in [SystemKey::CudaMs, SystemKey::Paella] {
        let mut sys = make_system(key, p100.clone(), ChannelConfig::default(), 11);
        let s = sys.register_model(&short);
        let l = sys.register_model(&long);
        let spec = WorkloadSpec {
            clients: 8,
            ..WorkloadSpec::steady(200.0, 300)
        };
        let arrivals = generate(&spec, &Mix::weighted(vec![(s, 19.7), (l, 1.0)]));
        let mut stats = run_trace(sys.as_mut(), &arrivals, 30);
        p99.push(stats.model_p99_us(s).expect("short jobs completed"));
    }
    assert!(
        p99[1] < p99[0],
        "P100: SRPT must still protect short jobs ({} vs {})",
        p99[0],
        p99[1]
    );
}
