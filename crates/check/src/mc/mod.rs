//! A loom-style deterministic interleaving explorer, self-contained and
//! std-only.
//!
//! [`Checker::check`] repeatedly executes a small concurrent *model* under a
//! cooperative scheduler: model threads run on real OS threads, but exactly
//! one is runnable at a time, and every visible operation (atomic access,
//! park/unpark, blocking wait) is a *schedule point* where the engine
//! consults a decision log. Depth-first search over that log — which thread
//! runs next, and which message a relaxed/acquire load reads (see
//! [`memory`]) — enumerates every interleaving and every weak-memory read
//! choice up to a bounded number of preemptions (CHESS-style: almost all
//! real concurrency bugs need only 1–2 preemptions, and the bound keeps the
//! state space polynomial instead of exponential).
//!
//! Failures the engine detects:
//! * model assertions ([`Ctx::check`]) — e.g. "the consumed value is the one
//!   that was published";
//! * deadlock — no thread runnable and not all threads done (lost wakeups);
//! * step-budget exhaustion — livelock or an unbounded model loop;
//! * panics escaping the model body.
//!
//! On failure the engine reports the event trace of the failing execution so
//! the interleaving can be read off directly.

pub mod memory;

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex, MutexGuard, Once};

use memory::{MemOrd, Memory, Msg, VClock};

/// Sentinel panic payload used to unwind model threads when an execution
/// aborts (failure found elsewhere). Filtered out of the panic hook.
struct AbortExec;

/// Exploration bounds.
#[derive(Clone, Debug)]
pub struct Config {
    /// Maximum preemptive context switches per execution (a switch away from
    /// a thread that could have continued). Non-preemptive switches — the
    /// running thread blocked or exited — are always free.
    pub max_preemptions: u32,
    /// Hard cap on explored executions; hitting it makes the report
    /// non-exhaustive.
    pub max_executions: u64,
    /// Hard cap on schedule points within one execution (livelock guard).
    pub max_steps: u64,
    /// Event-trace ring size kept for failure reports.
    pub max_trace: usize,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            max_preemptions: 2,
            max_executions: 1_000_000,
            max_steps: 20_000,
            max_trace: 256,
        }
    }
}

/// A failed execution: what went wrong plus the event trace leading there.
#[derive(Clone, Debug)]
pub struct Failure {
    /// Human-readable description of the violation.
    pub message: String,
    /// Interleaved event trace of the failing execution (most recent last).
    pub trace: Vec<String>,
}

/// Outcome of one [`Checker::check`] run.
#[derive(Clone, Debug)]
pub struct Report {
    /// Executions explored.
    pub executions: u64,
    /// Whether the bounded state space was fully explored (always `false`
    /// when a failure cut exploration short).
    pub exhausted: bool,
    /// First failure found, if any.
    pub failure: Option<Failure>,
}

impl Report {
    /// Convenience: exploration completed with no violation.
    pub fn passed(&self) -> bool {
        self.failure.is_none() && self.exhausted
    }
}

/// Identifies a model thread; returned by [`Builder::thread`] so models can
/// target [`Ctx::unpark`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ThreadId(pub usize);

/// Handle to a modeled atomic location (a plain id — copy freely into
/// thread closures).
#[derive(Clone, Copy, Debug)]
pub struct VAtomic(pub(crate) usize);

type Body = Box<dyn FnOnce(&mut Ctx) + Send + 'static>;

/// Per-execution model construction: allocate locations, spawn threads.
#[derive(Default)]
pub struct Builder {
    mem: Memory,
    names: Vec<String>,
    bodies: Vec<Body>,
}

impl Builder {
    /// Allocates an atomic location with an initial value.
    pub fn atomic(&mut self, name: &str, init: u64) -> VAtomic {
        VAtomic(self.mem.alloc(name, init))
    }

    /// Registers a model thread. Threads start when exploration schedules
    /// them, in any order.
    pub fn thread(&mut self, name: &str, body: impl FnOnce(&mut Ctx) + Send + 'static) -> ThreadId {
        self.names.push(name.to_string());
        self.bodies.push(Box::new(body));
        ThreadId(self.names.len() - 1)
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Status {
    /// Schedulable.
    Ready,
    /// Parked, waiting for an unpark token.
    Parked,
    /// Blocked until some store appends to the location's history.
    WaitingOnLoc(usize),
    /// Finished (normally or by abort).
    Done,
}

/// One recorded exploration choice: `chosen < options`.
#[derive(Clone, Copy, Debug)]
struct Decision {
    chosen: usize,
    options: usize,
}

struct EngineState {
    // --- persists across executions (the DFS path) ---
    decisions: Vec<Decision>,
    // --- reset per execution ---
    cursor: usize,
    mem: Memory,
    views: Vec<VClock>,
    statuses: Vec<Status>,
    park_tokens: Vec<bool>,
    current: usize,
    preemptions: u32,
    steps: u64,
    done_count: usize,
    n_threads: usize,
    exec_finished: bool,
    aborting: bool,
    failure: Option<Failure>,
    events: Vec<String>,
    names: Vec<String>,
}

impl EngineState {
    fn new() -> Self {
        EngineState {
            decisions: Vec::new(),
            cursor: 0,
            mem: Memory::default(),
            views: Vec::new(),
            statuses: Vec::new(),
            park_tokens: Vec::new(),
            current: 0,
            preemptions: 0,
            steps: 0,
            done_count: 0,
            n_threads: 0,
            exec_finished: false,
            aborting: false,
            failure: None,
            events: Vec::new(),
            names: Vec::new(),
        }
    }

    fn reset(&mut self, mem: Memory, names: Vec<String>) {
        let n = names.len();
        self.cursor = 0;
        self.mem = mem;
        self.views = vec![VClock::new(); n];
        self.statuses = vec![Status::Ready; n];
        self.park_tokens = vec![false; n];
        self.current = usize::MAX;
        self.preemptions = 0;
        self.steps = 0;
        self.done_count = 0;
        self.n_threads = n;
        self.exec_finished = false;
        self.aborting = false;
        self.failure = None;
        self.events.clear();
        self.names = names;
    }

    fn trace(&mut self, max_trace: usize, msg: String) {
        if self.events.len() >= max_trace {
            self.events.remove(0);
        }
        self.events.push(msg);
    }

    fn runnable(&self) -> Vec<usize> {
        (0..self.n_threads)
            .filter(|&t| self.statuses[t] == Status::Ready)
            .collect()
    }

    /// Consumes or extends the decision log. Single-option choices are not
    /// recorded (no branch to explore).
    fn decide(&mut self, options: usize) -> usize {
        debug_assert!(options >= 1);
        if options == 1 {
            return 0;
        }
        if self.cursor < self.decisions.len() {
            let d = self.decisions[self.cursor];
            debug_assert_eq!(
                d.options, options,
                "nondeterministic replay: option count changed"
            );
            self.cursor += 1;
            d.chosen
        } else {
            self.decisions.push(Decision { chosen: 0, options });
            self.cursor += 1;
            0
        }
    }

    /// Advances the DFS path to the next unexplored branch. Returns `false`
    /// when the whole bounded space has been covered.
    fn advance(&mut self) -> bool {
        while let Some(d) = self.decisions.last_mut() {
            if d.chosen + 1 < d.options {
                d.chosen += 1;
                return true;
            }
            self.decisions.pop();
        }
        false
    }
}

/// Shared engine: the scheduler/memory state plus its condvar.
pub(crate) struct Engine {
    cfg: Config,
    st: Mutex<EngineState>,
    cv: Condvar,
}

impl Engine {
    fn lock(&self) -> MutexGuard<'_, EngineState> {
        self.st.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Records a failure (first one wins), flips the abort flag and wakes
    /// every thread so it can unwind at its next wait/schedule point.
    fn fail(&self, st: &mut EngineState, msg: String) {
        if st.failure.is_none() {
            let trace = st.events.clone();
            st.failure = Some(Failure {
                message: msg,
                trace,
            });
        }
        st.aborting = true;
        self.cv.notify_all();
    }

    /// Picks the next thread to run when `me` cannot continue (blocked or
    /// done). Detects deadlock and execution completion.
    fn handoff(&self, st: &mut EngineState, _me: usize) {
        if st.aborting {
            self.cv.notify_all();
            return;
        }
        let runnable = st.runnable();
        if runnable.is_empty() {
            if st.done_count == st.n_threads {
                st.exec_finished = true;
            } else {
                let blocked: Vec<String> = (0..st.n_threads)
                    .filter(|&t| st.statuses[t] != Status::Done)
                    .map(|t| format!("{}[{:?}]", st.names[t], st.statuses[t]))
                    .collect();
                self.fail(
                    st,
                    format!("deadlock: no runnable thread ({})", blocked.join(", ")),
                );
            }
            self.cv.notify_all();
            return;
        }
        let pick = st.decide(runnable.len());
        st.current = runnable[pick];
        self.cv.notify_all();
    }

    /// The schedule point executed before every visible operation of `me`.
    /// May switch to another thread (a preemption). Returns with the lock
    /// held, `current == me`, ready to perform the operation atomically.
    fn sched_point(&self, me: usize) -> MutexGuard<'_, EngineState> {
        let mut st = self.lock();
        if st.aborting {
            drop(st);
            std::panic::panic_any(AbortExec);
        }
        debug_assert_eq!(st.current, me, "schedule point from a paused thread");
        st.steps += 1;
        if st.steps > self.cfg.max_steps {
            self.fail(
                &mut st,
                format!(
                    "step budget ({}) exceeded: livelock or unbounded model loop",
                    self.cfg.max_steps
                ),
            );
            drop(st);
            std::panic::panic_any(AbortExec);
        }
        // Options: continue myself (index 0, the no-preemption default), or
        // preempt to any other runnable thread — unless the budget is spent.
        let mut options = vec![me];
        if st.preemptions < self.cfg.max_preemptions {
            options.extend(st.runnable().into_iter().filter(|&t| t != me));
        }
        let pick = st.decide(options.len());
        let next = options[pick];
        if next != me {
            st.preemptions += 1;
            st.current = next;
            self.cv.notify_all();
            st = self.wait_scheduled(st, me);
        }
        st
    }

    /// Blocks until `me` is scheduled again (or the execution aborts).
    fn wait_scheduled<'a>(
        &'a self,
        mut st: MutexGuard<'a, EngineState>,
        me: usize,
    ) -> MutexGuard<'a, EngineState> {
        loop {
            if st.aborting {
                drop(st);
                std::panic::panic_any(AbortExec);
            }
            if st.current == me && st.statuses[me] == Status::Ready {
                return st;
            }
            st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Wakes every thread blocked on a store to `loc`.
    fn wake_loc_waiters(&self, st: &mut EngineState, loc: usize) {
        for t in 0..st.n_threads {
            if st.statuses[t] == Status::WaitingOnLoc(loc) {
                st.statuses[t] = Status::Ready;
            }
        }
    }
}

/// Per-thread execution context handed to model bodies; all model-visible
/// operations go through it.
pub struct Ctx {
    tid: usize,
    eng: Arc<Engine>,
}

impl Ctx {
    fn trace_op(&self, st: &mut EngineState, text: String) {
        let name = st.names[self.tid].clone();
        let max = self.eng.cfg.max_trace;
        st.trace(max, format!("{name}: {text}"));
    }

    /// Atomic load. Relaxed/acquire loads may read any message at or after
    /// this thread's view — each candidate is a separate exploration branch.
    pub fn load(&mut self, a: VAtomic, ord: MemOrd) -> u64 {
        let mut st = self.eng.sched_point(self.tid);
        let from = st.views[self.tid].get(a.0) as usize;
        let len = st.mem.locs[a.0].history.len();
        let idx = from + st.decide(len - from);
        self.finish_load(&mut st, a, idx, ord, false)
    }

    /// A load that always reads the *latest* message. Models the eventual
    /// visibility a real spin loop relies on; use it for loop-control reads
    /// so retry loops converge instead of spinning on a stale value forever.
    /// (On TSO hardware every read of a lock-prefixed location is "fresh",
    /// which is what the production channels' x86 deployment sees.)
    pub fn load_fresh(&mut self, a: VAtomic, ord: MemOrd) -> u64 {
        let mut st = self.eng.sched_point(self.tid);
        let idx = st.mem.locs[a.0].history.len() - 1;
        self.finish_load(&mut st, a, idx, ord, true)
    }

    fn finish_load(
        &self,
        st: &mut EngineState,
        a: VAtomic,
        idx: usize,
        ord: MemOrd,
        fresh: bool,
    ) -> u64 {
        let (val, view) = {
            let msg = &st.mem.locs[a.0].history[idx];
            (msg.val, msg.view.clone())
        };
        if ord.acquires() {
            st.views[self.tid].join(&view);
        }
        st.views[self.tid].raise(a.0, idx as u64);
        let name = st.mem.locs[a.0].name.clone();
        let tag = if fresh { "load!" } else { "load" };
        self.trace_op(st, format!("{tag} {name} -> {val} ({ord:?}, ts{idx})"));
        val
    }

    /// Atomic store.
    pub fn store(&mut self, a: VAtomic, val: u64, ord: MemOrd) {
        let mut st = self.eng.sched_point(self.tid);
        let ts = st.mem.locs[a.0].history.len() as u64;
        st.views[self.tid].raise(a.0, ts);
        let mut view = if ord.releases() {
            st.views[self.tid].clone()
        } else {
            VClock::new()
        };
        view.raise(a.0, ts);
        st.mem.locs[a.0].history.push(Msg { val, ts, view });
        let name = st.mem.locs[a.0].name.clone();
        self.trace_op(&mut st, format!("store {name} = {val} ({ord:?}, ts{ts})"));
        self.eng.wake_loc_waiters(&mut st, a.0);
        self.eng.cv.notify_all();
    }

    /// Atomic read-modify-write: reads the latest message (per-location
    /// atomicity), stores `f(old)`, returns `old`. The written message
    /// inherits the read message's view (release-sequence continuation).
    pub fn rmw(&mut self, a: VAtomic, ord: MemOrd, f: impl FnOnce(u64) -> u64) -> u64 {
        let mut st = self.eng.sched_point(self.tid);
        let (old, mut view) = {
            let msg = st.mem.locs[a.0]
                .history
                .last()
                .expect("history never empty");
            (msg.val, msg.view.clone())
        };
        if ord.acquires() {
            let v = view.clone();
            st.views[self.tid].join(&v);
        }
        let ts = st.mem.locs[a.0].history.len() as u64;
        st.views[self.tid].raise(a.0, ts);
        if ord.releases() {
            view.join(&st.views[self.tid]);
        }
        view.raise(a.0, ts);
        let new = f(old);
        st.mem.locs[a.0].history.push(Msg { val: new, ts, view });
        let name = st.mem.locs[a.0].name.clone();
        self.trace_op(
            &mut st,
            format!("rmw {name}: {old} -> {new} ({ord:?}, ts{ts})"),
        );
        self.eng.wake_loc_waiters(&mut st, a.0);
        self.eng.cv.notify_all();
        old
    }

    /// Compare-exchange on the latest message. On success behaves like
    /// [`rmw`](Self::rmw); on failure it is a relaxed load of the latest
    /// value.
    pub fn compare_exchange(
        &mut self,
        a: VAtomic,
        current: u64,
        new: u64,
        ord: MemOrd,
    ) -> Result<u64, u64> {
        let mut st = self.eng.sched_point(self.tid);
        let (old, mut view) = {
            let msg = st.mem.locs[a.0]
                .history
                .last()
                .expect("history never empty");
            (msg.val, msg.view.clone())
        };
        if old != current {
            let latest = st.mem.latest(a.0);
            st.views[self.tid].raise(a.0, latest);
            let name = st.mem.locs[a.0].name.clone();
            self.trace_op(&mut st, format!("cas {name} failed: saw {old}"));
            return Err(old);
        }
        if ord.acquires() {
            let v = view.clone();
            st.views[self.tid].join(&v);
        }
        let ts = st.mem.locs[a.0].history.len() as u64;
        st.views[self.tid].raise(a.0, ts);
        if ord.releases() {
            view.join(&st.views[self.tid]);
        }
        view.raise(a.0, ts);
        st.mem.locs[a.0].history.push(Msg { val: new, ts, view });
        let name = st.mem.locs[a.0].name.clone();
        self.trace_op(
            &mut st,
            format!("cas {name}: {old} -> {new} ({ord:?}, ts{ts})"),
        );
        self.eng.wake_loc_waiters(&mut st, a.0);
        self.eng.cv.notify_all();
        Ok(old)
    }

    /// Snapshot of a location's history length, for pairing with
    /// [`wait_changed`](Self::wait_changed). Not a schedule point.
    pub fn mark(&mut self, a: VAtomic) -> u64 {
        let st = self.eng.lock();
        if st.aborting {
            drop(st);
            std::panic::panic_any(AbortExec);
        }
        st.mem.locs[a.0].history.len() as u64
    }

    /// Blocks until some store appends to `a`'s history beyond `mark`.
    /// Returns immediately if one already has. This is the model's bounded
    /// stand-in for a spin-retry: instead of looping (unbounded executions),
    /// the thread sleeps until the location *can* have changed.
    pub fn wait_changed(&mut self, a: VAtomic, mark: u64) {
        let mut st = self.eng.sched_point(self.tid);
        if (st.mem.locs[a.0].history.len() as u64) > mark {
            return;
        }
        st.statuses[self.tid] = Status::WaitingOnLoc(a.0);
        let name = st.mem.locs[a.0].name.clone();
        self.trace_op(&mut st, format!("blocks waiting on {name}"));
        self.eng.handoff(&mut st, self.tid);
        let _st = self.eng.wait_scheduled(st, self.tid);
    }

    /// Parks the calling thread until a token from [`unpark`](Self::unpark)
    /// is available, consuming it — `std::thread::park` semantics, except
    /// that (deliberately, conservatively) **no** happens-before edge is
    /// modeled between unparker and parkee: protocols must synchronize
    /// through their own atomics.
    pub fn park(&mut self) {
        let mut st = self.eng.sched_point(self.tid);
        if st.park_tokens[self.tid] {
            st.park_tokens[self.tid] = false;
            self.trace_op(&mut st, "park consumed pending token".to_string());
            return;
        }
        st.statuses[self.tid] = Status::Parked;
        self.trace_op(&mut st, "parks".to_string());
        self.eng.handoff(&mut st, self.tid);
        let _st = self.eng.wait_scheduled(st, self.tid);
    }

    /// Makes `t`'s next (or current) [`park`](Self::park) return.
    pub fn unpark(&mut self, t: ThreadId) {
        let mut st = self.eng.sched_point(self.tid);
        if st.statuses[t.0] == Status::Parked {
            st.statuses[t.0] = Status::Ready;
            let name = st.names[t.0].clone();
            self.trace_op(&mut st, format!("unparks {name}"));
        } else {
            st.park_tokens[t.0] = true;
            let name = st.names[t.0].clone();
            self.trace_op(&mut st, format!("queues unpark token for {name}"));
        }
        self.eng.cv.notify_all();
    }

    /// Model assertion: on failure the execution is recorded as a
    /// counterexample and exploration stops.
    pub fn check(&mut self, cond: bool, msg: &str) {
        if cond {
            return;
        }
        let mut st = self.eng.lock();
        let who = st.names[self.tid].clone();
        self.eng
            .fail(&mut st, format!("assertion failed in {who}: {msg}"));
        drop(st);
        std::panic::panic_any(AbortExec);
    }

    /// Appends a free-form event to the execution trace.
    pub fn note(&mut self, msg: &str) {
        let mut st = self.eng.lock();
        if st.aborting {
            drop(st);
            std::panic::panic_any(AbortExec);
        }
        let text = msg.to_string();
        self.trace_op(&mut st, text);
    }
}

/// Installs (once, process-wide) a panic hook that silences the engine's
/// internal [`AbortExec`] unwinding while delegating everything else to the
/// previously installed hook.
fn install_quiet_abort_hook() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<AbortExec>().is_none() {
                prev(info);
            }
        }));
    });
}

/// The exploration driver. Create one per model; `check` owns a private
/// worker-thread pool for the duration of the call.
pub struct Checker {
    cfg: Config,
}

impl Default for Checker {
    fn default() -> Self {
        Checker::new(Config::default())
    }
}

impl Checker {
    /// Creates a checker with the given bounds.
    pub fn new(cfg: Config) -> Self {
        Checker { cfg }
    }

    /// Explores every interleaving (up to the configured bounds) of the model
    /// constructed by `build`. `build` runs once per execution and must be
    /// deterministic: allocate the same locations and spawn the same threads
    /// in the same order every time.
    pub fn check(&self, build: impl Fn(&mut Builder)) -> Report {
        install_quiet_abort_hook();
        let engine = Arc::new(Engine {
            cfg: self.cfg.clone(),
            st: Mutex::new(EngineState::new()),
            cv: Condvar::new(),
        });
        let mut workers: Vec<mpsc::Sender<Box<dyn FnOnce() + Send>>> = Vec::new();
        let mut handles = Vec::new();
        let mut executions: u64 = 0;

        let report = loop {
            let mut b = Builder::default();
            build(&mut b);
            let n = b.bodies.len();
            assert!(n > 0, "model has no threads");
            {
                let mut st = engine.lock();
                st.reset(b.mem, b.names);
                // The first schedule decision: which thread starts.
                let pick = st.decide(n);
                st.current = pick;
            }
            while workers.len() < n {
                let (tx, rx) = mpsc::channel::<Box<dyn FnOnce() + Send>>();
                workers.push(tx);
                handles.push(std::thread::spawn(move || {
                    while let Ok(job) = rx.recv() {
                        job();
                    }
                }));
            }
            for (tid, body) in b.bodies.into_iter().enumerate() {
                let eng = Arc::clone(&engine);
                workers[tid]
                    .send(Box::new(move || run_model_thread(eng, tid, body)))
                    .expect("worker thread alive");
            }
            let (failure, exhausted) = {
                let mut st = engine.lock();
                while !st.exec_finished {
                    st = engine.cv.wait(st).unwrap_or_else(|e| e.into_inner());
                }
                executions += 1;
                let failure = st.failure.take();
                if failure.is_some() {
                    (failure, false)
                } else {
                    (None, !st.advance())
                }
            };
            if failure.is_some() {
                break Report {
                    executions,
                    exhausted: false,
                    failure,
                };
            }
            if exhausted {
                break Report {
                    executions,
                    exhausted: true,
                    failure: None,
                };
            }
            if executions >= self.cfg.max_executions {
                break Report {
                    executions,
                    exhausted: false,
                    failure: None,
                };
            }
        };
        drop(workers);
        for h in handles {
            let _ = h.join();
        }
        report
    }
}

/// Worker-side harness around one model thread for one execution.
fn run_model_thread(eng: Arc<Engine>, tid: usize, body: Body) {
    // Wait to be scheduled for the first time.
    {
        let mut st = eng.lock();
        loop {
            if st.aborting {
                break;
            }
            if st.current == tid {
                break;
            }
            st = eng.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
        if st.aborting {
            drop(st);
            finish_model_thread(&eng, tid);
            return;
        }
    }
    let mut ctx = Ctx {
        tid,
        eng: Arc::clone(&eng),
    };
    let result = catch_unwind(AssertUnwindSafe(move || body(&mut ctx)));
    if let Err(payload) = result {
        if payload.downcast_ref::<AbortExec>().is_none() {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".to_string());
            let mut st = eng.lock();
            let who = st.names[tid].clone();
            eng.fail(&mut st, format!("panic in model thread {who}: {msg}"));
        }
    }
    finish_model_thread(&eng, tid);
}

/// Marks a model thread done and hands control onward (or completes the
/// execution).
fn finish_model_thread(eng: &Engine, tid: usize) {
    let mut st = eng.lock();
    st.statuses[tid] = Status::Done;
    st.done_count += 1;
    let name = st.names[tid].clone();
    let max = eng.cfg.max_trace;
    st.trace(max, format!("{name}: exits"));
    if st.done_count == st.n_threads {
        st.exec_finished = true;
        eng.cv.notify_all();
        return;
    }
    if st.aborting {
        // Everyone else must still unwind; completion is reached once the
        // last of them calls finish_model_thread.
        eng.cv.notify_all();
        return;
    }
    eng.handoff(&mut st, tid);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two increment-via-load/store threads race: exploration must find the
    /// classic lost update (both read 0, both write 1).
    #[test]
    fn finds_lost_update() {
        let checker = Checker::new(Config {
            max_preemptions: 2,
            ..Config::default()
        });
        let report = checker.check(|b| {
            let x = b.atomic("x", 0);
            let done = b.atomic("done", 0);
            for name in ["a", "b"] {
                b.thread(name, move |c| {
                    let v = c.load(x, MemOrd::AcqRel);
                    c.store(x, v + 1, MemOrd::AcqRel);
                    c.rmw(done, MemOrd::AcqRel, |d| d + 1);
                });
            }
            b.thread("observer", move |c| {
                let m = c.mark(done);
                if c.load_fresh(done, MemOrd::Acquire) < 2 {
                    c.wait_changed(done, m);
                }
                while c.load_fresh(done, MemOrd::Acquire) < 2 {
                    let m = c.mark(done);
                    c.wait_changed(done, m);
                }
                let v = c.load_fresh(x, MemOrd::Acquire);
                c.check(v == 2, "increments must not be lost");
            });
        });
        let f = report.failure.expect("lost update must be found");
        assert!(f.message.contains("increments must not be lost"), "{f:?}");
    }

    /// The same race with atomic RMW increments is correct; exploration must
    /// exhaust without failure.
    #[test]
    fn rmw_increments_are_safe() {
        let checker = Checker::default();
        let report = checker.check(|b| {
            let x = b.atomic("x", 0);
            for name in ["a", "b"] {
                b.thread(name, move |c| {
                    c.rmw(x, MemOrd::AcqRel, |v| v + 1);
                });
            }
            b.thread("observer", move |c| {
                while c.load_fresh(x, MemOrd::Acquire) < 2 {
                    let m = c.mark(x);
                    c.wait_changed(x, m);
                }
            });
        });
        assert!(report.passed(), "{report:?}");
        assert!(report.executions > 1);
    }

    /// Message passing through a release store / acquire load pair never
    /// observes the stale payload.
    #[test]
    fn release_acquire_message_passing_passes() {
        let report = Checker::default().check(|b| {
            let data = b.atomic("data", 0);
            let flag = b.atomic("flag", 0);
            b.thread("producer", move |c| {
                c.store(data, 42, MemOrd::Relaxed);
                c.store(flag, 1, MemOrd::Release);
            });
            b.thread("consumer", move |c| {
                while c.load_fresh(flag, MemOrd::Acquire) == 0 {
                    let m = c.mark(flag);
                    c.wait_changed(flag, m);
                }
                let v = c.load(data, MemOrd::Relaxed);
                c.check(v == 42, "payload must be visible after acquire");
            });
        });
        assert!(report.passed(), "{report:?}");
    }

    /// Downgrading the publication store to relaxed makes the stale-payload
    /// read reachable — the checker must flag it.
    #[test]
    fn relaxed_message_passing_fails() {
        let report = Checker::default().check(|b| {
            let data = b.atomic("data", 0);
            let flag = b.atomic("flag", 0);
            b.thread("producer", move |c| {
                c.store(data, 42, MemOrd::Relaxed);
                c.store(flag, 1, MemOrd::Relaxed); // bug: no release
            });
            b.thread("consumer", move |c| {
                while c.load_fresh(flag, MemOrd::Acquire) == 0 {
                    let m = c.mark(flag);
                    c.wait_changed(flag, m);
                }
                let v = c.load(data, MemOrd::Relaxed);
                c.check(v == 42, "payload must be visible after acquire");
            });
        });
        let f = report.failure.expect("stale read must be found");
        assert!(f.message.contains("payload must be visible"), "{f:?}");
    }

    /// A parked thread nobody unparks is a deadlock.
    #[test]
    fn detects_deadlock() {
        let report = Checker::default().check(|b| {
            b.thread("sleeper", |c| c.park());
        });
        let f = report.failure.expect("deadlock must be found");
        assert!(f.message.contains("deadlock"), "{f:?}");
    }

    /// Unpark-before-park leaves a token; no deadlock.
    #[test]
    fn unpark_token_prevents_deadlock() {
        let report = Checker::default().check(|b| {
            b.thread("sleeper", |c| c.park());
            let s = ThreadId(0);
            b.thread("waker", move |c| c.unpark(s));
        });
        assert!(report.passed(), "{report:?}");
    }

    /// Preemption bounding keeps exploration finite and small.
    #[test]
    fn bounded_exploration_terminates() {
        let checker = Checker::new(Config {
            max_preemptions: 1,
            ..Config::default()
        });
        let report = checker.check(|b| {
            let x = b.atomic("x", 0);
            for name in ["a", "b", "c"] {
                b.thread(name, move |c| {
                    c.rmw(x, MemOrd::AcqRel, |v| v + 1);
                    c.rmw(x, MemOrd::AcqRel, |v| v + 1);
                });
            }
        });
        assert!(report.passed(), "{report:?}");
    }
}
