//! Custom source lints for the Paella codebase.
//!
//! `cargo clippy` cannot express the repo's own contracts, so this module
//! implements a small line-oriented lint pass over a comment/string-aware
//! tokenization of each source file:
//!
//! * **R1 `no-wall-clock`** — the simulation stack (`crates/sim`,
//!   `crates/core`, `crates/gpu`, `crates/cluster`) runs on virtual time;
//!   `Instant` and `SystemTime` are banned outright. Wall-clock reads there
//!   silently break determinism and reproducibility of every experiment.
//!   The bench crate is covered too — figure binaries are deterministic
//!   grids now — except the two allowlisted harness files
//!   (`crates/bench/src/sweep.rs`, `crates/bench/src/bin/perf.rs`), which
//!   measure how long *we* take, never what the simulation observes.
//! * **R2 `relaxed-needs-justification`** — every `Ordering::Relaxed` in
//!   `crates/channels` must carry a `relaxed:` justification comment (same
//!   line, or the comment block above the statement). A relaxed access
//!   with no written argument is exactly where the model checker's mutation
//!   corpus finds bugs.
//! * **R3 `hot-path-unwrap`** — the per-request hot paths
//!   (`crates/core/src/dispatcher.rs` and all of `crates/cluster/src`) must
//!   not `unwrap()`; `expect(` is allowed only with an `invariant:` comment
//!   stating why the value cannot be absent.
//! * **R4 `no-thread-sleep`** — `thread::sleep` is banned in library code
//!   (everything under `crates/*/src` except `crates/bench`): the stack is
//!   event-driven and virtual-timed, so a sleep is always a latent hang or a
//!   hidden wall-clock dependency.
//!
//! Test code (`#[cfg(test)]` regions) is exempt from R2–R4; R1 applies
//! everywhere in the sim crates, tests included.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// One lint finding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Violation {
    /// Workspace-relative path, `/`-separated.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Stable rule identifier (`no-wall-clock`, …).
    pub rule: &'static str,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// One source line after tokenization: executable text with comments and
/// literal contents blanked, plus the concatenated comment text.
///
/// Shared with the [`crate::analysis`] engine, which lexes its token trees
/// from the blanked `code` text so both passes agree on what is and is not
/// executable source.
#[derive(Clone, Debug, Default)]
pub(crate) struct Line {
    pub(crate) code: String,
    pub(crate) comment: String,
}

/// Splits `content` into [`Line`]s, tracking block comments (nested), line
/// comments, string/char literals, and raw strings across line boundaries.
/// Literal *contents* are blanked so a pattern inside a string never
/// triggers a rule; comment text is collected separately so justification
/// tags can be searched.
pub(crate) fn tokenize(content: &str) -> Vec<Line> {
    #[derive(PartialEq)]
    enum State {
        Code,
        LineComment,
        Block(u32),
        Str,
        RawStr(u32),
        Char,
    }
    let chars: Vec<char> = content.chars().collect();
    let mut lines = Vec::new();
    let mut cur = Line::default();
    let mut st = State::Code;
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        let next = chars.get(i + 1).copied();
        if c == '\n' {
            if st == State::LineComment {
                st = State::Code;
            }
            lines.push(std::mem::take(&mut cur));
            i += 1;
            continue;
        }
        match st {
            State::Code => {
                match c {
                    '/' if next == Some('/') => {
                        st = State::LineComment;
                        i += 2;
                        continue;
                    }
                    '/' if next == Some('*') => {
                        st = State::Block(1);
                        i += 2;
                        continue;
                    }
                    '"' => {
                        st = State::Str;
                        cur.code.push('"');
                        i += 1;
                        continue;
                    }
                    'r' | 'b' => {
                        // Possible raw-string opener r"…", r#"…"#, br"…".
                        let prev_ident =
                            i > 0 && (chars[i - 1].is_alphanumeric() || chars[i - 1] == '_');
                        let mut j = i + 1;
                        if c == 'b' && chars.get(j) == Some(&'r') {
                            j += 1;
                        }
                        let mut hashes = 0u32;
                        while chars.get(j) == Some(&'#') {
                            hashes += 1;
                            j += 1;
                        }
                        if !prev_ident && (c == 'r' || j > i + 1) && chars.get(j) == Some(&'"') {
                            st = State::RawStr(hashes);
                            cur.code.push('"');
                            i = j + 1;
                            continue;
                        }
                        cur.code.push(c);
                        i += 1;
                        continue;
                    }
                    '\'' => {
                        // Char literal vs lifetime: 'x' / '\n' are literals;
                        // 'a (no closing quote right after) is a lifetime.
                        if next == Some('\\') {
                            st = State::Char;
                            cur.code.push('\'');
                            i += 2; // consume the backslash with the opener
                            continue;
                        }
                        if next.is_some() && chars.get(i + 2) == Some(&'\'') {
                            cur.code.push_str("' '");
                            i += 3;
                            continue;
                        }
                        cur.code.push('\'');
                        i += 1;
                        continue;
                    }
                    _ => {
                        cur.code.push(c);
                        i += 1;
                        continue;
                    }
                }
            }
            State::LineComment => {
                cur.comment.push(c);
                i += 1;
            }
            State::Block(d) => {
                if c == '*' && next == Some('/') {
                    st = if d == 1 {
                        State::Code
                    } else {
                        State::Block(d - 1)
                    };
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    st = State::Block(d + 1);
                    i += 2;
                } else {
                    cur.comment.push(c);
                    i += 1;
                }
            }
            State::Str => {
                if c == '\\' {
                    i += 2; // skip the escaped char, whatever it is
                } else if c == '"' {
                    st = State::Code;
                    cur.code.push('"');
                    i += 1;
                } else {
                    i += 1; // blank the contents
                }
            }
            State::RawStr(hashes) => {
                if c == '"' {
                    let mut ok = true;
                    for k in 0..hashes as usize {
                        if chars.get(i + 1 + k) != Some(&'#') {
                            ok = false;
                            break;
                        }
                    }
                    if ok {
                        st = State::Code;
                        cur.code.push('"');
                        i += 1 + hashes as usize;
                        continue;
                    }
                }
                i += 1;
            }
            State::Char => {
                if c == '\\' {
                    i += 2;
                } else if c == '\'' {
                    st = State::Code;
                    cur.code.push('\'');
                    i += 1;
                } else {
                    i += 1;
                }
            }
        }
    }
    if !cur.code.is_empty() || !cur.comment.is_empty() {
        lines.push(cur);
    }
    lines
}

/// Marks the lines belonging to `#[cfg(test)]` items by brace counting from
/// the attribute to the close of the item it gates.
pub(crate) fn test_mask(lines: &[Line]) -> Vec<bool> {
    let mut mask = vec![false; lines.len()];
    let mut i = 0;
    while i < lines.len() {
        if !lines[i].code.contains("#[cfg(test)]") {
            i += 1;
            continue;
        }
        let start = i;
        let mut depth = 0i64;
        let mut opened = false;
        let mut j = i;
        while j < lines.len() {
            for ch in lines[j].code.chars() {
                match ch {
                    '{' => {
                        depth += 1;
                        opened = true;
                    }
                    '}' => depth -= 1,
                    _ => {}
                }
            }
            if opened && depth <= 0 {
                break;
            }
            j += 1;
        }
        let end = j.min(lines.len() - 1);
        for m in &mut mask[start..=end] {
            *m = true;
        }
        i = end + 1;
    }
    mask
}

/// Whether line `idx` carries a justification `tag` — on the same line or in
/// the comment block above the statement containing it. The upward scan
/// tolerates the statement's own leading lines (a multi-line expression has
/// no `;`, `{`, or `}` before the flagged line) and stops at the first line
/// that ends an earlier statement or is blank.
pub(crate) fn justified(lines: &[Line], idx: usize, tag: &str) -> bool {
    if lines[idx].comment.contains(tag) {
        return true;
    }
    let mut i = idx;
    while i > 0 {
        i -= 1;
        let l = &lines[i];
        let code = l.code.trim();
        if code.is_empty() {
            if l.comment.contains(tag) {
                return true;
            }
            if l.comment.trim().is_empty() {
                return false;
            }
        } else if code.contains(';') || code.contains('{') || code.contains('}') {
            return false;
        }
        // Otherwise: a statement-prefix code line — keep walking up.
    }
    false
}

/// Lints one file's `content` under its workspace-relative `path`
/// (`/`-separated). Pure function of its inputs, so rules are unit-testable
/// on synthetic sources.
pub fn lint_source(path: &str, content: &str) -> Vec<Violation> {
    let lines = tokenize(content);
    let in_test = test_mask(&lines);
    let mut out = Vec::new();
    let mut push = |line: usize, rule: &'static str, message: String| {
        out.push(Violation {
            file: path.to_string(),
            line: line + 1,
            rule,
            message,
        });
    };

    // Wall-clock allowlist: the sweep harness and the perf baseline binary
    // time the *host* by design. Nothing else in bench (or the sim stack)
    // may read the clock — cells must stay deterministic at every thread
    // count.
    let wall_clock_allowed =
        path == "crates/bench/src/sweep.rs" || path == "crates/bench/src/bin/perf.rs";
    let sim_stack = [
        "crates/sim/src/",
        "crates/core/src/",
        "crates/gpu/src/",
        "crates/cluster/src/",
        "crates/bench/src/",
        // The fault-injection and robustness layers (DESIGN §11) live on
        // the same virtual clock: the workload harness replays fault plans
        // and the telemetry layer timestamps fault events, so neither may
        // read the host clock.
        "crates/workload/src/",
        "crates/telemetry/src/",
        // The LLM tier shares the virtual clock and its batch formation is
        // a decision path: same determinism obligations.
        "crates/llm/src/",
    ]
    .iter()
    .any(|p| path.starts_with(p))
        && !wall_clock_allowed;
    let channels = path.starts_with("crates/channels/src/");
    let hot_path =
        path == "crates/core/src/dispatcher.rs" || path.starts_with("crates/cluster/src/");
    let library =
        path.starts_with("crates/") && path.contains("/src/") && !path.starts_with("crates/bench/");

    for (i, l) in lines.iter().enumerate() {
        if sim_stack && (l.code.contains("Instant") || l.code.contains("SystemTime")) {
            push(
                i,
                "no-wall-clock",
                "wall-clock time in the virtual-time simulation stack".into(),
            );
        }
        if in_test[i] {
            continue;
        }
        if channels && l.code.contains("Ordering::Relaxed") && !justified(&lines, i, "relaxed:") {
            push(
                i,
                "relaxed-needs-justification",
                "Ordering::Relaxed without a `relaxed:` justification comment".into(),
            );
        }
        if hot_path {
            if l.code.contains(".unwrap()") {
                push(
                    i,
                    "hot-path-unwrap",
                    "unwrap() on a request hot path; use expect() with an `invariant:` comment"
                        .into(),
                );
            }
            if l.code.contains(".expect(") && !justified(&lines, i, "invariant:") {
                push(
                    i,
                    "hot-path-unwrap",
                    "expect() on a request hot path without an `invariant:` comment".into(),
                );
            }
        }
        if library && l.code.contains("thread::sleep") {
            push(
                i,
                "no-thread-sleep",
                "thread::sleep in library code; the stack is event-driven".into(),
            );
        }
    }
    out
}

/// Extracts the variant names of `pub enum TraceEvent` from a tokenized
/// source, with the 0-based line each was declared on.
fn trace_event_variants(lines: &[Line]) -> Vec<(usize, String)> {
    let mut out = Vec::new();
    let mut depth = 0i64;
    let mut in_enum = false;
    let mut opened = false;
    for (i, l) in lines.iter().enumerate() {
        if !in_enum {
            if l.code.contains("enum TraceEvent") {
                in_enum = true;
                depth = 0;
            } else {
                continue;
            }
        }
        // A variant declaration starts at depth 1 (its own braces, if any,
        // open *after* the name) — so test the depth entering the line.
        if opened && depth == 1 {
            let t = l.code.trim();
            if t.starts_with(|c: char| c.is_ascii_uppercase()) {
                let name: String = t
                    .chars()
                    .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
                    .collect();
                out.push((i, name));
            }
        }
        for ch in l.code.chars() {
            match ch {
                '{' => {
                    depth += 1;
                    opened = true;
                }
                '}' => depth -= 1,
                _ => {}
            }
        }
        if opened && depth <= 0 {
            break;
        }
    }
    out
}

/// The code lines of the first `fn {name}` body in a tokenized source
/// (0-based start line, concatenated per-line code), by brace counting.
fn fn_body(lines: &[Line], name: &str) -> Option<(usize, Vec<String>)> {
    let opener = format!("fn {name}(");
    let start = lines.iter().position(|l| l.code.contains(&opener))?;
    let mut depth = 0i64;
    let mut opened = false;
    let mut body = Vec::new();
    for l in &lines[start..] {
        for ch in l.code.chars() {
            match ch {
                '{' => {
                    depth += 1;
                    opened = true;
                }
                '}' => depth -= 1,
                _ => {}
            }
        }
        body.push(l.code.clone());
        if opened && depth <= 0 {
            break;
        }
    }
    Some((start, body))
}

/// **R5 `trace-event-exhaustiveness`** — every `TraceEvent` variant must be
/// handled explicitly on both consumption paths: the `kind()` hot match
/// (which `text_summary` and the flight recorder ride on) and the Chrome
/// exporter. A `_ =>` wildcard inside `kind()` is rejected outright — it
/// would silently swallow the next variant someone adds, which is exactly
/// how observability gaps are born.
pub fn trace_event_exhaustiveness(event_src: &str, export_src: &str) -> Vec<Violation> {
    const EVENT_FILE: &str = "crates/telemetry/src/event.rs";
    const EXPORT_FILE: &str = "crates/telemetry/src/export.rs";
    let event_lines = tokenize(event_src);
    let export_lines = tokenize(export_src);
    let variants = trace_event_variants(&event_lines);
    let mut out = Vec::new();
    if variants.is_empty() {
        out.push(Violation {
            file: EVENT_FILE.into(),
            line: 1,
            rule: "trace-event-exhaustiveness",
            message: "no `enum TraceEvent` variants found (parser out of sync?)".into(),
        });
        return out;
    }
    let Some((kind_line, kind_body)) = fn_body(&event_lines, "kind") else {
        out.push(Violation {
            file: EVENT_FILE.into(),
            line: 1,
            rule: "trace-event-exhaustiveness",
            message: "no `fn kind` hot match found".into(),
        });
        return out;
    };
    for (off, l) in kind_body.iter().enumerate() {
        if l.trim_start().starts_with("_ =>") {
            out.push(Violation {
                file: EVENT_FILE.into(),
                line: kind_line + off + 1,
                rule: "trace-event-exhaustiveness",
                message: "wildcard `_ =>` in the kind() hot match swallows new variants".into(),
            });
        }
    }
    let kind_code = kind_body.join("\n");
    let export_code: String = export_lines
        .iter()
        .map(|l| l.code.as_str())
        .collect::<Vec<_>>()
        .join("\n");
    for (line, v) in &variants {
        let pat = format!("TraceEvent::{v}");
        if !kind_code.contains(&pat) {
            out.push(Violation {
                file: EVENT_FILE.into(),
                line: line + 1,
                rule: "trace-event-exhaustiveness",
                message: format!("variant {v} has no arm in the kind() hot match"),
            });
        }
        if !export_code.contains(&pat) {
            out.push(Violation {
                file: EXPORT_FILE.into(),
                line: line + 1,
                rule: "trace-event-exhaustiveness",
                message: format!("variant {v} is not handled by the Chrome exporter"),
            });
        }
    }
    out
}

/// Recursively collects `.rs` files under `dir`.
pub(crate) fn rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Lints every `crates/*/src/**/*.rs` under the workspace `root`.
///
/// # Errors
///
/// Propagates filesystem errors (unreadable directories or files).
pub fn run(root: &Path) -> io::Result<Vec<Violation>> {
    let mut files = Vec::new();
    for entry in fs::read_dir(root.join("crates"))? {
        let src = entry?.path().join("src");
        if src.is_dir() {
            rs_files(&src, &mut files)?;
        }
    }
    files.sort();
    let mut out = Vec::new();
    for f in files {
        let rel = f
            .strip_prefix(root)
            .unwrap_or(&f)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        out.extend(lint_source(&rel, &fs::read_to_string(&f)?));
    }
    // R5 needs two files side by side, so it runs outside the per-file loop.
    let event_p = root.join("crates/telemetry/src/event.rs");
    let export_p = root.join("crates/telemetry/src/export.rs");
    if event_p.is_file() && export_p.is_file() {
        out.extend(trace_event_exhaustiveness(
            &fs::read_to_string(&event_p)?,
            &fs::read_to_string(&export_p)?,
        ));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn codes(src: &str) -> Vec<String> {
        tokenize(src).into_iter().map(|l| l.code).collect()
    }

    #[test]
    fn strings_and_comments_are_blanked() {
        let src = "let x = \"Ordering::Relaxed // not code\"; // real comment\n";
        let lines = tokenize(src);
        assert!(!lines[0].code.contains("Relaxed"));
        assert!(!lines[0].code.contains("not code"));
        assert_eq!(lines[0].comment.trim(), "real comment");
    }

    #[test]
    fn nested_block_comments() {
        let src = "a /* outer /* inner */ still comment */ b\n";
        assert_eq!(
            codes(src)[0].split_whitespace().collect::<Vec<_>>(),
            ["a", "b"]
        );
    }

    #[test]
    fn raw_strings_with_hashes() {
        let src = "let s = r#\"thread::sleep \" inside\"#; sleep_not();\n";
        let c = &codes(src)[0];
        assert!(!c.contains("thread::sleep"));
        assert!(c.contains("sleep_not"));
    }

    #[test]
    fn char_literal_vs_lifetime() {
        let src = "fn f<'a>(x: &'a str) { let c = '\"'; let d = '\\''; }\n";
        let c = &codes(src)[0];
        assert!(c.contains("<'a>"), "lifetime survives: {c}");
        // The quote chars inside the literals must not open a string state
        // that would swallow the rest of the line.
        assert!(c.contains('}'));
    }

    #[test]
    fn multiline_string_spans_lines() {
        let src = "let s = \"Instant\nSystemTime\"; done();\n";
        let cs = codes(src);
        assert!(!cs[0].contains("Instant"));
        assert!(!cs[1].contains("SystemTime"));
        assert!(cs[1].contains("done"));
    }

    #[test]
    fn test_mask_covers_cfg_test_module() {
        let src = "fn prod() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\nfn after() {}\n";
        let lines = tokenize(src);
        let mask = test_mask(&lines);
        assert_eq!(mask, vec![false, true, true, true, true, false]);
    }

    #[test]
    fn wall_clock_flagged_in_sim_stack_only() {
        let src = "use std::time::Instant;\n";
        assert_eq!(lint_source("crates/core/src/x.rs", src).len(), 1);
        assert_eq!(lint_source("crates/gpu/src/x.rs", src).len(), 1);
        assert_eq!(lint_source("crates/cluster/src/router.rs", src).len(), 1);
        assert!(lint_source("crates/channels/src/x.rs", src).is_empty());
    }

    #[test]
    fn wall_clock_in_bench_flagged_except_harness_allowlist() {
        let src = "use std::time::Instant;\n";
        // Figure binaries and bench lib code are deterministic grid cells:
        // wall-clock is a lint error there.
        assert_eq!(lint_source("crates/bench/src/bin/fig02.rs", src).len(), 1);
        assert_eq!(lint_source("crates/bench/src/lib.rs", src).len(), 1);
        assert_eq!(lint_source("crates/bench/src/chart.rs", src).len(), 1);
        // The harness and the perf baseline measure the host on purpose.
        assert!(lint_source("crates/bench/src/sweep.rs", src).is_empty());
        assert!(lint_source("crates/bench/src/bin/perf.rs", src).is_empty());
    }

    #[test]
    fn relaxed_needs_justification_same_line_or_block_above() {
        let bad = "fn f(a: &A) { a.load(Ordering::Relaxed); }\n";
        let v = lint_source("crates/channels/src/x.rs", bad);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "relaxed-needs-justification");

        let same_line = "fn f(a: &A) { a.load(Ordering::Relaxed); } // relaxed: why\n";
        assert!(lint_source("crates/channels/src/x.rs", same_line).is_empty());

        let block_above = "fn f(a: &A) {\n    // relaxed: a long justification\n    // spanning two lines.\n    a.load(Ordering::Relaxed);\n}\n";
        assert!(lint_source("crates/channels/src/x.rs", block_above).is_empty());

        let detached = "fn f(a: &A) {\n    // relaxed: justification\n    let y = 1;\n    a.load(Ordering::Relaxed);\n}\n";
        assert_eq!(lint_source("crates/channels/src/x.rs", detached).len(), 1);

        // Multi-line expression: the comment sits above the statement while
        // the flagged access is on a continuation line.
        let multiline = "fn f(a: &A) {\n    // relaxed: why this is fine\n    let v = a\n        .chained()\n        .load(Ordering::Relaxed);\n}\n";
        assert!(lint_source("crates/channels/src/x.rs", multiline).is_empty());
    }

    #[test]
    fn relaxed_in_tests_is_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t(a: &A) { a.load(Ordering::Relaxed); }\n}\n";
        assert!(lint_source("crates/channels/src/x.rs", src).is_empty());
    }

    #[test]
    fn dispatcher_unwrap_and_bare_expect_flagged() {
        let src = "fn f(x: Option<u8>) { x.unwrap(); }\n";
        let v = lint_source("crates/core/src/dispatcher.rs", src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "hot-path-unwrap");
        // Same code in another core file is fine.
        assert!(lint_source("crates/core/src/waitlist.rs", src).is_empty());

        let bare = "fn f(x: Option<u8>) { x.expect(\"msg\"); }\n";
        assert_eq!(lint_source("crates/core/src/dispatcher.rs", bare).len(), 1);
        let ok = "fn f(x: Option<u8>) {\n    // invariant: checked by caller\n    x.expect(\"msg\");\n}\n";
        assert!(lint_source("crates/core/src/dispatcher.rs", ok).is_empty());

        // The cluster tier is a hot path too: every file under its src.
        let v = lint_source("crates/cluster/src/lib.rs", src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "hot-path-unwrap");
        assert_eq!(lint_source("crates/cluster/src/router.rs", bare).len(), 1);
        assert!(lint_source("crates/cluster/src/router.rs", ok).is_empty());
    }

    #[test]
    fn thread_sleep_banned_outside_bench_and_tests() {
        let src = "fn f() { std::thread::sleep(d); }\n";
        assert_eq!(lint_source("crates/channels/src/x.rs", src).len(), 1);
        assert!(lint_source("crates/bench/src/x.rs", src).is_empty());
        let test_src = "#[cfg(test)]\nmod tests {\n    fn f() { std::thread::sleep(d); }\n}\n";
        assert!(lint_source("crates/channels/src/x.rs", test_src).is_empty());
    }

    #[test]
    fn trace_event_lint_clean_on_real_sources() {
        let event_src = include_str!("../../telemetry/src/event.rs");
        let export_src = include_str!("../../telemetry/src/export.rs");
        let v = trace_event_exhaustiveness(event_src, export_src);
        assert!(
            v.is_empty(),
            "real sources flagged:\n{}",
            v.iter()
                .map(|x| x.to_string())
                .collect::<Vec<_>>()
                .join("\n")
        );
    }

    #[test]
    fn trace_event_lint_catches_unhandled_variant_mutant() {
        // Self-test with teeth: graft a new variant into the *real* enum
        // without touching kind() or the exporter — the lint must flag both
        // consumption paths.
        let event_src = include_str!("../../telemetry/src/event.rs");
        let export_src = include_str!("../../telemetry/src/export.rs");
        let anchor = "}\n\nimpl TraceEvent {";
        assert!(event_src.contains(anchor), "event.rs layout changed");
        let mutated = event_src.replace(
            anchor,
            "    PhantomProbe {\n        x: u64,\n    },\n}\n\nimpl TraceEvent {",
        );
        let v = trace_event_exhaustiveness(&mutated, export_src);
        assert_eq!(v.len(), 2, "kind() + exporter both missing: {v:?}");
        assert!(v.iter().all(|x| x.message.contains("PhantomProbe")));
        assert!(v.iter().any(|x| x.message.contains("kind()")));
        assert!(v.iter().any(|x| x.message.contains("Chrome exporter")));
    }

    #[test]
    fn trace_event_lint_catches_wildcard_mutant() {
        // Replacing the last kind() arm with a wildcard must be flagged
        // twice: the swallow itself, and the variant it orphans.
        let event_src = include_str!("../../telemetry/src/event.rs");
        let export_src = include_str!("../../telemetry/src/export.rs");
        let arm = "TraceEvent::CounterSample { .. } => \"counter-sample\",";
        assert!(event_src.contains(arm), "kind() layout changed");
        let mutated = event_src.replace(arm, "_ => \"counter-sample\",");
        let v = trace_event_exhaustiveness(&mutated, export_src);
        assert!(
            v.iter().any(|x| x.message.contains("wildcard")),
            "wildcard not flagged: {v:?}"
        );
        assert!(
            v.iter()
                .any(|x| x.message.contains("CounterSample") && x.message.contains("kind()")),
            "orphaned variant not flagged: {v:?}"
        );
    }

    #[test]
    fn the_repo_itself_is_clean() {
        // The CI gate in miniature: linting the enclosing workspace from the
        // crate's own manifest dir must produce no violations.
        let root = Path::new(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .and_then(Path::parent)
            .expect("workspace root");
        let violations = run(root).expect("lint walk");
        assert!(
            violations.is_empty(),
            "repo lint violations:\n{}",
            violations
                .iter()
                .map(|v| v.to_string())
                .collect::<Vec<_>>()
                .join("\n")
        );
    }
}
