#![warn(missing_docs)]

//! # paella-models
//!
//! The model zoo for the reproduction: graph definitions for every Table 2
//! model (plus the extra Fig. 3 models and the MNIST-scale job of Fig. 9),
//! synthetic microbenchmark jobs, and the calibration machinery that pins
//! each model's uncontended simulated execution time to the paper's measured
//! "TVM Exec Time".

pub mod calibrate;
pub mod synthetic;
pub mod zoo;

use std::collections::HashMap;

use paella_compiler::{CompiledModel, CostModel, Graph};
use paella_gpu::DeviceConfig;
use paella_sim::SimDuration;

pub use calibrate::{calibrate, measure_uncontended};

/// One zoo entry: a graph builder plus its Table 2 target execution time and
/// serialized weight size.
#[derive(Clone)]
pub struct ZooEntry {
    /// Registry name (e.g. `"resnet18"`).
    pub name: &'static str,
    /// Display name matching the paper's tables.
    pub display: &'static str,
    /// Target uncontended execution time (Table 2 "TVM Exec Time").
    pub target_exec: SimDuration,
    /// Serialized model size in bytes (Table 2 "Size").
    pub size_bytes: u64,
    /// Whether the model appears in Table 2 (vs the Fig. 3 extras).
    pub in_table2: bool,
    /// Graph builder.
    pub build: fn() -> Graph,
}

/// All registered models, Table 2 order first, then the Fig. 3/Fig. 9 extras.
pub fn registry() -> Vec<ZooEntry> {
    vec![
        ZooEntry {
            name: "resnet18",
            display: "ResNet-18",
            target_exec: SimDuration::from_micros(1_580),
            size_bytes: 75 << 20,
            in_table2: true,
            build: zoo::resnet18,
        },
        ZooEntry {
            name: "mobilenetv2",
            display: "MobileNetV2",
            target_exec: SimDuration::from_micros(1_670),
            size_bytes: 14 << 20,
            in_table2: true,
            build: zoo::mobilenet_v2,
        },
        ZooEntry {
            name: "resnet34",
            display: "ResNet-34",
            target_exec: SimDuration::from_micros(2_550),
            size_bytes: 144 << 20,
            in_table2: true,
            build: zoo::resnet34,
        },
        ZooEntry {
            name: "squeezenet1.1",
            display: "Squeezenet1.1",
            target_exec: SimDuration::from_micros(4_790),
            size_bytes: (5.2 * (1 << 20) as f64) as u64,
            in_table2: true,
            build: zoo::squeezenet1_1,
        },
        ZooEntry {
            name: "resnet50",
            display: "ResNet-50",
            target_exec: SimDuration::from_micros(5_760),
            size_bytes: 124 << 20,
            in_table2: true,
            build: zoo::resnet50,
        },
        ZooEntry {
            name: "densenet",
            display: "DenseNet",
            target_exec: SimDuration::from_micros(6_080),
            size_bytes: 41 << 20,
            in_table2: true,
            build: zoo::densenet121,
        },
        ZooEntry {
            name: "googlenet",
            display: "GoogleNet",
            target_exec: SimDuration::from_micros(7_860),
            size_bytes: 28 << 20,
            in_table2: true,
            build: zoo::googlenet,
        },
        ZooEntry {
            name: "inceptionv3",
            display: "InceptionV3",
            target_exec: SimDuration::from_micros(31_200),
            size_bytes: 93 << 20,
            in_table2: true,
            build: zoo::inception_v3,
        },
        // Fig. 3 extras (targets are representative TVM/T4 magnitudes, not
        // Table 2 rows — the paper does not report their exec times).
        ZooEntry {
            name: "vgg16",
            display: "VGG16",
            target_exec: SimDuration::from_micros(7_200),
            size_bytes: 528 << 20,
            in_table2: false,
            build: zoo::vgg16,
        },
        ZooEntry {
            name: "gpt2",
            display: "GPT2",
            target_exec: SimDuration::from_micros(9_500),
            size_bytes: 548 << 20,
            in_table2: false,
            build: zoo::gpt2,
        },
        ZooEntry {
            name: "yolov5",
            display: "YoloV5",
            target_exec: SimDuration::from_micros(12_400),
            size_bytes: 28 << 20,
            in_table2: false,
            build: zoo::yolov5,
        },
        // The Fig. 9 dispatcher-stress model: ~1000× smaller than ResNet-18.
        ZooEntry {
            name: "mnist",
            display: "MNIST",
            target_exec: SimDuration::from_micros(30),
            size_bytes: 60 << 10,
            in_table2: false,
            build: zoo::mnist,
        },
    ]
}

/// A cache of calibrated models for one device.
pub struct ModelZoo {
    device: DeviceConfig,
    cost: CostModel,
    cache: HashMap<&'static str, CompiledModel>,
}

impl ModelZoo {
    /// Creates an empty zoo targeting `device`.
    pub fn new(device: DeviceConfig) -> Self {
        ModelZoo {
            device,
            cost: CostModel::default(),
            cache: HashMap::new(),
        }
    }

    /// Returns the calibrated model `name`, compiling and calibrating on
    /// first use.
    ///
    /// # Panics
    ///
    /// Panics if `name` is not in the registry.
    pub fn get(&mut self, name: &str) -> &CompiledModel {
        let entry = registry()
            .into_iter()
            .find(|e| e.name == name)
            .unwrap_or_else(|| panic!("unknown model {name:?}"));
        self.cache.entry(entry.name).or_insert_with(|| {
            let graph = (entry.build)();
            let (model, _) = calibrate(
                entry.name,
                &graph,
                &self.cost,
                &self.device,
                entry.target_exec,
                0.01,
            );
            model
        })
    }

    /// Calibrates and returns every Table 2 model, in table order.
    pub fn table2(&mut self) -> Vec<CompiledModel> {
        let names: Vec<&'static str> = registry()
            .iter()
            .filter(|e| e.in_table2)
            .map(|e| e.name)
            .collect();
        names.into_iter().map(|n| self.get(n).clone()).collect()
    }

    /// The device this zoo calibrates against.
    pub fn device(&self) -> &DeviceConfig {
        &self.device
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_table2_and_extras() {
        let r = registry();
        assert_eq!(r.iter().filter(|e| e.in_table2).count(), 8);
        assert!(r.iter().any(|e| e.name == "mnist"));
        assert!(r.iter().any(|e| e.name == "gpt2"));
    }

    #[test]
    fn zoo_calibrates_resnet18_to_table2() {
        let mut zoo = ModelZoo::new(DeviceConfig::tesla_t4());
        let m = zoo.get("resnet18").clone();
        let t = measure_uncontended(&m, &DeviceConfig::tesla_t4());
        let target = SimDuration::from_micros(1_580);
        let err = (t.as_nanos() as f64 - target.as_nanos() as f64).abs() / target.as_nanos() as f64;
        assert!(err < 0.02, "resnet18 calibrated to {t}, target {target}");
    }

    #[test]
    fn zoo_caches_models() {
        let mut zoo = ModelZoo::new(DeviceConfig::tesla_t4());
        let a = zoo.get("mnist") as *const _;
        let b = zoo.get("mnist") as *const _;
        assert_eq!(a, b, "second get must hit the cache");
    }

    #[test]
    #[should_panic(expected = "unknown model")]
    fn unknown_model_panics() {
        ModelZoo::new(DeviceConfig::tesla_t4()).get("alexnet");
    }

    #[test]
    fn mnist_is_orders_of_magnitude_smaller() {
        let mut zoo = ModelZoo::new(DeviceConfig::tesla_t4());
        let mnist = measure_uncontended(&zoo.get("mnist").clone(), &DeviceConfig::tesla_t4());
        let r18 = measure_uncontended(&zoo.get("resnet18").clone(), &DeviceConfig::tesla_t4());
        assert!(
            r18.as_nanos() > 30 * mnist.as_nanos(),
            "resnet18 {r18} vs mnist {mnist}"
        );
    }
}
