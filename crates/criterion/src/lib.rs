//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmarking crate.
//!
//! The build environment has no network access, so the real crates-io
//! `criterion` cannot be fetched. This shim keeps the workspace's
//! `harness = false` benches compiling and runnable: it implements the
//! subset of the criterion API they use (`criterion_group!` /
//! `criterion_main!`, benchmark groups, `iter` / `iter_batched`,
//! throughput annotations, `BenchmarkId`) with a straightforward
//! wall-clock timing loop — no warm-up phases, statistical analysis,
//! HTML reports, or CLI argument handling.

use std::fmt;
use std::time::Instant;

/// Re-export so `criterion::black_box` resolves like the real crate.
pub use std::hint::black_box;

/// Top-level benchmark driver, mirroring `criterion::Criterion`.
#[derive(Clone, Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 100 }
    }
}

impl Criterion {
    /// Sets how many timed samples each benchmark collects.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size,
            throughput: None,
        }
    }

    /// Runs a standalone benchmark outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let sample_size = self.sample_size;
        run_benchmark(id, sample_size, None, f);
        self
    }
}

/// Per-element/byte annotation used to report throughput.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// The benchmark processes this many logical elements per iteration.
    Elements(u64),
    /// The benchmark processes this many bytes per iteration.
    Bytes(u64),
}

/// How `iter_batched` amortises setup cost; the shim runs one setup per
/// iteration regardless of the variant.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Identifier combining a function name and a parameter, mirroring
/// `criterion::BenchmarkId`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Identifier carrying only a parameter value.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

/// A named collection of benchmarks sharing throughput settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Annotates subsequent benchmarks with a throughput figure.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Overrides the sample size for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl fmt::Display,
        f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        run_benchmark(&full, self.sample_size, self.throughput, f);
        self
    }

    /// Runs one parameterised benchmark in this group.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        run_benchmark(&full, self.sample_size, self.throughput, |b| f(b, input));
        self
    }

    /// Ends the group (reporting already happened per-benchmark).
    pub fn finish(self) {}
}

/// Timing handle passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed_ns: u128,
}

impl Bencher {
    /// Times `routine` over the chosen number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed_ns = start.elapsed().as_nanos();
    }

    /// Times `routine` with per-iteration inputs built by `setup`;
    /// setup time is excluded from the measurement.
    pub fn iter_batched<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
        _size: BatchSize,
    ) {
        let mut total: u128 = 0;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed().as_nanos();
        }
        self.elapsed_ns = total;
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(
    id: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    mut f: F,
) {
    // One untimed pass to touch caches/allocators, then timed samples.
    let mut warm = Bencher {
        iters: 1,
        elapsed_ns: 0,
    };
    f(&mut warm);

    let mut best_ns_per_iter = f64::INFINITY;
    let iters_per_sample = 16u64;
    for _ in 0..sample_size {
        let mut b = Bencher {
            iters: iters_per_sample,
            elapsed_ns: 0,
        };
        f(&mut b);
        let per_iter = b.elapsed_ns as f64 / b.iters as f64;
        if per_iter < best_ns_per_iter {
            best_ns_per_iter = per_iter;
        }
    }

    match throughput {
        Some(Throughput::Elements(n)) if best_ns_per_iter > 0.0 => {
            let rate = n as f64 * 1e9 / best_ns_per_iter;
            println!("{id:<56} {best_ns_per_iter:>12.1} ns/iter  {rate:>14.0} elem/s");
        }
        Some(Throughput::Bytes(n)) if best_ns_per_iter > 0.0 => {
            let rate = n as f64 * 1e9 / best_ns_per_iter;
            println!("{id:<56} {best_ns_per_iter:>12.1} ns/iter  {rate:>14.0} B/s");
        }
        _ => println!("{id:<56} {best_ns_per_iter:>12.1} ns/iter"),
    }
}

/// Mirrors `criterion::criterion_group!`: bundles benchmark functions and a
/// configuration into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = <$crate::Criterion as ::core::default::Default>::default();
            targets = $($target),+
        }
    };
}

/// Mirrors `criterion::criterion_main!`: emits `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
