//! Perf baseline: wall-clock and simulated-events/sec for the committed
//! smoke configurations, written to `BENCH_sweep.json` and
//! `BENCH_dispatch.json` at the repo root. These files are the perf
//! trajectory future PRs regress against: `--smoke` re-measures, compares
//! against the committed baseline, rewrites the files, and exits non-zero
//! on a >2× wall-clock regression.
//!
//! Three measurements:
//! - **sweep smoke** — a fixed single-node grid (system × rate, Fig. 2
//!   shape) run serially and on a 4-thread [`SweepExecutor`]; the committed
//!   baseline demonstrates the harness's parallel speedup.
//! - **cluster smoke** — the `fig_cluster --smoke` grid on 4 threads.
//! - **dispatch smoke** — a launch-bound tiny-kernel pipeline run twice,
//!   with event-triggered DAG dispatch (the committed number) and with the
//!   per-kernel scheduler loop (the `loop_*` comparison fields), plus a
//!   `load_signal()` poll-rate probe pinning the O(1) incremental
//!   aggregate. Both runs must complete identical simulated work.
//!
//! Along with `sweep.rs`, this binary is the one place wall-clock time is
//! legitimate (it measures the harness, not the simulation); the
//! `paella-check` no-wall-clock lint allowlists exactly these files.

use paella_bench::channels;
use paella_bench::sweep::{timed, SweepExecutor};
use paella_cluster::RoutingPolicy;
use paella_core::{ClientId, Dispatcher, DispatcherConfig, InferenceRequest, SrptDeficitScheduler};
use paella_gpu::DeviceConfig;
use paella_models::synthetic;
use paella_sim::SimDuration;
use paella_workload::{
    generate, make_system, run_cluster_point, run_trace, smoke_models, ClusterExpSpec, Mix,
    SystemKey, WorkloadSpec,
};

/// Parallel worker count the committed baseline is measured at.
const BASELINE_THREADS: usize = 4;
/// Wall-clock regression tolerance vs the committed baseline (CI gate).
const REGRESSION_FACTOR: f64 = 2.0;
/// Fixed per-cell blocking phase. Each committed smoke cell pairs its
/// CPU-bound simulation with this off-CPU wait so the serial-vs-parallel
/// comparison measures the executor's cell *overlap* — a quantity that is
/// stable across runner core counts. A pure-CPU speedup would read ~1× on a
/// single-core runner and ~Nx on an N-core one, making the committed
/// baseline (and the CI regression gate on it) meaningless across machines.
/// The phase is recorded in `BENCH_sweep.json` as `cell_block_ms`.
const CELL_BLOCK: std::time::Duration = std::time::Duration::from_millis(150);

/// One sweep-smoke cell: a Fig. 2-shape saturation run plus the fixed
/// blocking phase. Returns (jobs completed, kernels dispatched) as the
/// simulated-event counts.
fn sweep_cell(i: usize) -> (u64, u64) {
    std::thread::sleep(CELL_BLOCK);
    let rates = [8_000.0, 13_000.0, 20_000.0, 30_000.0];
    let keys = [SystemKey::PaellaMsJbj, SystemKey::Paella];
    let key = keys[i / rates.len() % keys.len()];
    let rate = rates[i % rates.len()];
    let seed = 7 + (i / (rates.len() * keys.len())) as u64;
    let mut sys = make_system(key, DeviceConfig::gtx_1660_super(), channels(), seed);
    let m = sys.register_model(&synthetic::fig2_job());
    let n = SWEEP_CELL_REQUESTS;
    let spec = WorkloadSpec {
        clients: 16,
        ..WorkloadSpec::steady(rate, n)
    };
    let arrivals = generate(&spec, &Mix::single(m));
    let stats = run_trace(sys.as_mut(), &arrivals, 0);
    let jobs = stats.completions.len() as u64;
    // Every fig2 job is 8 kernels plus an input and an output copy.
    (jobs, jobs * 10)
}

/// Requests per sweep-smoke cell.
const SWEEP_CELL_REQUESTS: usize = 400;

/// Cells in the sweep smoke: 2 systems × 4 rates × 2 seed replicas.
const SWEEP_CELLS: usize = 16;

fn run_sweep(threads: usize) -> (f64, u64, u64) {
    let ex = SweepExecutor::with_threads(threads);
    let (results, wall) = timed(|| ex.run(SWEEP_CELLS, sweep_cell));
    let jobs: u64 = results.iter().map(|r| r.0).sum();
    let kernels: u64 = results.iter().map(|r| r.1).sum();
    (wall, jobs, kernels)
}

fn run_cluster(threads: usize) -> (f64, u64) {
    let policies = [
        RoutingPolicy::RoundRobin,
        RoutingPolicy::Jsq,
        RoutingPolicy::PowerOfTwoChoices,
        RoutingPolicy::LeastRemainingWork,
    ];
    let ex = SweepExecutor::with_threads(threads);
    let (results, wall) = timed(|| {
        ex.run(policies.len(), |i| {
            let spec = ClusterExpSpec::smoke(policies[i]);
            let r = run_cluster_point(&smoke_models(), &spec);
            r.completed as u64
        })
    });
    (wall, results.iter().sum())
}

/// Kernels per job in the dispatch smoke's launch-bound pipeline.
const DISPATCH_DEPTH: u64 = 64;
/// Requests in the dispatch smoke.
const DISPATCH_REQUESTS: u64 = 3_000;

/// The dispatch smoke: a launch-bound pipeline of tiny kernels — the
/// regime where per-kernel host work dominates — spaced so the device is
/// uncontended and event-triggered DAG dispatch (when enabled) carries the
/// steady state off GPU completion notifications. A `load_signal()`
/// poll-rate probe is taken mid-run with a job in flight. Returns
/// (wall_s, jobs, kernels, polls_per_s).
fn run_dispatch(dag: bool, polls: u64) -> (f64, u64, u64, f64) {
    let mut cfg = DispatcherConfig::paella();
    cfg.dag_dispatch = dag;
    let mut sys = Dispatcher::new(
        DeviceConfig::gtx_1660_super(),
        channels(),
        Box::new(SrptDeficitScheduler::new(Some(2_000.0))),
        cfg,
        7,
    );
    let m = paella_core::ServingSystem::register_model(
        &mut sys,
        &synthetic::uniform_job(
            "tiny",
            DISPATCH_DEPTH as u32,
            SimDuration::from_micros(2),
            1,
        ),
    );
    let mut at = paella_sim::SimTime::ZERO;
    for i in 0..DISPATCH_REQUESTS {
        sys.submit(InferenceRequest {
            client: ClientId((i % 16) as u32),
            model: m,
            submitted_at: at,
        });
        // Wider than the chain's ~860 µs JCT, so the steady state is one
        // uncontended job — the regime the DAG fast path serves.
        at = at.saturating_add(SimDuration::from_micros(1_000));
    }
    // Advance partway, then park the sim at an instant with a job on the
    // device so the poll probe observes a loaded dispatcher.
    let (_, warm_wall) = timed(|| {
        for _ in 0..20_000 {
            let Some(t) = sys.next_event_time() else {
                break;
            };
            sys.advance_until(t);
        }
        while sys.load_signal().inflight == 0 {
            let Some(t) = sys.next_event_time() else {
                break;
            };
            sys.advance_until(t);
        }
    });
    let (acc, poll_wall) = timed(|| {
        let mut acc = 0u64;
        for _ in 0..polls {
            // black_box defeats loop-invariant hoisting: each iteration must
            // actually execute the O(1) load_signal() read.
            let sig = std::hint::black_box(&sys).load_signal();
            acc = acc.wrapping_add(std::hint::black_box(sig).inflight);
        }
        acc
    });
    assert!(acc >= polls, "poll probe must observe in-flight jobs");
    let (_, rest_wall) = timed(|| sys.run_to_idle());
    let jobs = sys.drain_completions().len() as u64;
    let wall = warm_wall + rest_wall;
    let polls_per_s = if polls > 0 {
        polls as f64 / poll_wall
    } else {
        0.0
    };
    (wall, jobs, jobs * DISPATCH_DEPTH, polls_per_s)
}

/// Extracts `"key": <number>` from flat JSON (the schema below is flat on
/// purpose — no JSON parser in the workspace).
fn json_f64(s: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let at = s.find(&pat)? + pat.len();
    let rest = s[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn gate(label: &str, fresh_wall: f64, path: &str, key: &str) -> bool {
    let Ok(prior) = std::fs::read_to_string(path) else {
        println!("# {label}: no committed baseline at {path}; writing one");
        return true;
    };
    match json_f64(&prior, key) {
        Some(base) if fresh_wall > base * REGRESSION_FACTOR => {
            println!(
                "# {label}: REGRESSION {fresh_wall:.3}s vs baseline {base:.3}s (>{REGRESSION_FACTOR}x)"
            );
            false
        }
        Some(base) => {
            println!("# {label}: {fresh_wall:.3}s vs baseline {base:.3}s — ok");
            true
        }
        None => {
            println!("# {label}: baseline {path} missing key {key}; rewriting");
            true
        }
    }
}

fn main() {
    // `--smoke` is the committed configuration; it is also the default.
    let _smoke = std::env::args().any(|a| a == "--smoke");
    println!("# perf: committed smoke configurations (wall-clock + simulated events/s)");

    let (serial_wall, jobs, kernels) = run_sweep(1);
    let (par_wall, par_jobs, par_kernels) = run_sweep(BASELINE_THREADS);
    assert_eq!(
        (jobs, kernels),
        (par_jobs, par_kernels),
        "parallel sweep must simulate identical work"
    );
    let speedup = serial_wall / par_wall;
    println!(
        "# sweep: {SWEEP_CELLS} cells, serial {serial_wall:.3}s, \
         {BASELINE_THREADS}-thread {par_wall:.3}s, speedup {speedup:.2}x"
    );

    let (cluster_wall, cluster_jobs) = run_cluster(BASELINE_THREADS);
    println!("# cluster: 4 policies, {cluster_wall:.3}s, {cluster_jobs} jobs");

    let (disp_wall, disp_jobs, disp_kernels, polls_per_s) = run_dispatch(true, 1_000_000);
    let (loop_wall, loop_jobs, loop_kernels, _) = run_dispatch(false, 0);
    assert_eq!(
        (disp_jobs, disp_kernels),
        (loop_jobs, loop_kernels),
        "DAG dispatch must complete identical simulated work"
    );
    let dag_speedup = loop_wall / disp_wall;
    println!(
        "# dispatch: {disp_jobs} jobs in {disp_wall:.3}s (dag) vs {loop_wall:.3}s \
         (per-kernel loop, {dag_speedup:.2}x), load_signal {:.1}M polls/s",
        polls_per_s / 1e6
    );

    let sweep_json = format!(
        "{{\n  \"schema_version\": 1,\n  \"bench\": \"sweep_smoke\",\n  \
         \"cells\": {SWEEP_CELLS},\n  \"requests_per_cell\": {SWEEP_CELL_REQUESTS},\n  \
         \"cell_block_ms\": {},\n  \"threads_parallel\": {BASELINE_THREADS},\n  \
         \"serial_wall_s\": {serial_wall:.4},\n  \"parallel_wall_s\": {par_wall:.4},\n  \
         \"speedup\": {speedup:.3},\n  \
         \"sim_jobs\": {jobs},\n  \"sim_kernels\": {kernels},\n  \
         \"serial_sim_kernels_per_s\": {:.0},\n  \"parallel_sim_kernels_per_s\": {:.0},\n  \
         \"cluster_cells\": 4,\n  \"cluster_wall_s\": {cluster_wall:.4},\n  \
         \"cluster_sim_jobs\": {cluster_jobs}\n}}\n",
        CELL_BLOCK.as_millis(),
        kernels as f64 / serial_wall,
        kernels as f64 / par_wall,
    );
    let dispatch_json = format!(
        "{{\n  \"schema_version\": 2,\n  \"bench\": \"dispatch_smoke\",\n  \
         \"requests\": {DISPATCH_REQUESTS},\n  \"pipeline_depth\": {DISPATCH_DEPTH},\n  \
         \"wall_s\": {disp_wall:.4},\n  \
         \"sim_jobs\": {disp_jobs},\n  \"sim_kernels\": {disp_kernels},\n  \
         \"sim_kernels_per_s\": {:.0},\n  \
         \"loop_wall_s\": {loop_wall:.4},\n  \"loop_sim_kernels_per_s\": {:.0},\n  \
         \"dag_speedup\": {dag_speedup:.3},\n  \
         \"load_signal_polls_per_s\": {polls_per_s:.0}\n}}\n",
        disp_kernels as f64 / disp_wall,
        loop_kernels as f64 / loop_wall,
    );

    // Gate against the committed baseline before overwriting it.
    let sweep_ok = gate("sweep", par_wall, "BENCH_sweep.json", "parallel_wall_s");
    let dispatch_ok = gate("dispatch", disp_wall, "BENCH_dispatch.json", "wall_s");

    std::fs::write("BENCH_sweep.json", &sweep_json).expect("write BENCH_sweep.json");
    std::fs::write("BENCH_dispatch.json", &dispatch_json).expect("write BENCH_dispatch.json");
    println!("# wrote BENCH_sweep.json, BENCH_dispatch.json");

    if !(sweep_ok && dispatch_ok) {
        std::process::exit(1);
    }
}
