//! Saturation-aware dynamic batching — the §8 "Dynamic batching" item.
//!
//! The paper argues dynamic batching hurts critical-path latency (waiting +
//! marshalling) but concedes that "at high loads where throughput
//! bottlenecks contribute to latency, the efficiency gains may make batching
//! worth performing. Paella can be extended to detect saturation and batch
//! in these cases." [`SaturationBatcher`] is that extension: a front end
//! over any [`ServingSystem`] that passes requests straight through while
//! the system keeps up, and coalesces same-model requests into batched
//! executions only once the backlog crosses a threshold.

use std::collections::VecDeque;

use paella_compiler::{CompiledModel, DeviceOp};
use paella_sim::{EventQueue, SimDuration, SimTime};

use crate::serve::ServingSystem;
use crate::types::{InferenceRequest, JobCompletion, LoadSignal, ModelId};

/// Batching policy knobs.
#[derive(Clone, Copy, Debug)]
pub struct BatchPolicy {
    /// Per-model backlog (queued + unacknowledged) above which batching
    /// engages — the saturation detector.
    pub saturation_threshold: usize,
    /// Maximum batch size.
    pub max_batch: usize,
    /// Per-request cost of forming the batched input (copying into the
    /// batch tensor).
    pub gather_cost: SimDuration,
}

impl Default for BatchPolicy {
    fn default() -> Self {
        BatchPolicy {
            saturation_threshold: 8,
            max_batch: 8,
            gather_cost: SimDuration::from_micros(4),
        }
    }
}

struct ModelState {
    /// Queued requests not yet handed to the inner system.
    queue: VecDeque<InferenceRequest>,
    /// Requests inside in-flight submissions (singleton or batch), in
    /// submission order, keyed by the inner submission's `submitted_at`.
    inflight: VecDeque<(SimTime, Vec<InferenceRequest>)>,
    /// Inner model ids per batch size: `variants[b-1]`, registered lazily.
    variants: Vec<Option<ModelId>>,
    model: CompiledModel,
}

/// The saturation-batching front end.
pub struct SaturationBatcher<S: ServingSystem> {
    inner: S,
    policy: BatchPolicy,
    models: Vec<ModelState>,
    /// Pending pass-through arrivals (the batcher adds no latency when the
    /// system is unsaturated).
    arrivals: EventQueue<InferenceRequest>,
    completions: Vec<JobCompletion>,
    /// Total batched executions formed (diagnostics).
    batches_formed: u64,
}

impl<S: ServingSystem> SaturationBatcher<S> {
    /// Wraps `inner` with the given policy.
    pub fn new(inner: S, policy: BatchPolicy) -> Self {
        SaturationBatcher {
            inner,
            policy,
            models: Vec::new(),
            arrivals: EventQueue::new(),
            completions: Vec::new(),
            batches_formed: 0,
        }
    }

    /// Number of batched executions formed so far.
    pub fn batches_formed(&self) -> u64 {
        self.batches_formed
    }

    /// Builds the batch-`b` variant of a model: kernels do `b`× the work at
    /// sub-linear cost (fixed overheads amortize), copies scale linearly.
    fn batched_model(model: &CompiledModel, b: usize) -> CompiledModel {
        if b <= 1 {
            return model.clone();
        }
        let scale = 0.35 + 0.65 * b as f64;
        let mut m = model.clone();
        m.name = format!("{}@b{b}", m.name).into();
        for op in &mut m.ops {
            match op {
                DeviceOp::Kernel(k) => k.duration.base = k.duration.base.mul_f64(scale),
                DeviceOp::InputCopy { bytes } | DeviceOp::OutputCopy { bytes } => *bytes *= b,
            }
        }
        m.input_bytes *= b;
        m.output_bytes *= b;
        m
    }

    fn variant(&mut self, model: usize, b: usize) -> ModelId {
        if self.models[model].variants.len() < b {
            self.models[model].variants.resize(b, None);
        }
        if let Some(id) = self.models[model].variants[b - 1] {
            return id;
        }
        let v = Self::batched_model(&self.models[model].model, b);
        let id = self.inner.register_model(&v);
        self.models[model].variants[b - 1] = id.into();
        id
    }

    /// Feeds the inner system: singletons while unsaturated, full batches
    /// through a bounded submission window once the backlog crosses the
    /// threshold.
    fn pump(&mut self, model: usize, now: SimTime) {
        loop {
            let st = &self.models[model];
            if st.queue.is_empty() {
                return;
            }
            let inflight_reqs: usize = st.inflight.iter().map(|(_, v)| v.len()).sum();
            let backlog = st.queue.len() + inflight_reqs;
            let saturated = backlog > self.policy.saturation_threshold;
            let b = if saturated {
                // Keep at most a few batched submissions in flight so the
                // queue accumulates into full batches instead of trickling.
                if st.inflight.len() >= 4 {
                    return;
                }
                st.queue.len().min(self.policy.max_batch)
            } else {
                1
            };
            let batch: Vec<InferenceRequest> = self.models[model].queue.drain(..b).collect();
            if b > 1 {
                self.batches_formed += 1;
            }
            let inner_id = self.variant(model, b);
            // Batch formation: gather each request's input into the batch
            // tensor; submitted when the gather finishes.
            let submit_at = now + self.policy.gather_cost * b as u64;
            let lead = batch[0];
            self.inner.submit(InferenceRequest {
                client: lead.client,
                model: inner_id,
                submitted_at: submit_at,
            });
            self.models[model].inflight.push_back((submit_at, batch));
        }
    }

    fn on_inner_completion(&mut self, c: JobCompletion) {
        // Find the owning model by matching the inner model id variants.
        let model = self
            .models
            .iter()
            .position(|st| st.variants.contains(&Some(c.request.model)))
            .expect("completion for unknown variant");
        // Pair with the right in-flight submission: the inner system may
        // finish different-sized batches out of order (SRPT favours the
        // small ones), so match on the submission timestamp it echoes back.
        let pos = self.models[model]
            .inflight
            .iter()
            .position(|&(at, _)| at == c.request.submitted_at)
            .unwrap_or(0);
        let (_, batch) = self.models[model]
            .inflight
            .remove(pos)
            .expect("completion without in-flight batch");
        for req in batch {
            let mut jc = c;
            jc.request = req;
            // The batch scatter on the way out mirrors the gather.
            jc.client_visible_at += self.policy.gather_cost;
            self.completions.push(jc);
        }
        self.pump(model, c.client_visible_at);
    }
}

impl<S: ServingSystem> ServingSystem for SaturationBatcher<S> {
    fn register_model(&mut self, model: &CompiledModel) -> ModelId {
        let id = ModelId(self.models.len() as u32);
        self.models.push(ModelState {
            queue: VecDeque::new(),
            inflight: VecDeque::new(),
            variants: Vec::new(),
            model: model.clone(),
        });
        id
    }

    fn submit(&mut self, req: InferenceRequest) {
        let at = req.submitted_at.max(self.arrivals.now());
        self.arrivals.schedule_at(at, req);
    }

    fn next_event_time(&mut self) -> Option<SimTime> {
        match (self.inner.next_event_time(), self.arrivals.peek_time()) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    fn advance_until(&mut self, t: SimTime) {
        loop {
            let ta = self.arrivals.peek_time();
            let tn = self.inner.next_event_time();
            let next = match (ta, tn) {
                (Some(a), Some(b)) => a.min(b),
                (Some(a), None) => a,
                (None, Some(b)) => b,
                (None, None) => break,
            };
            if next > t {
                break;
            }
            if ta.is_some_and(|a| tn.is_none_or(|b| a <= b)) {
                let (at, req) = self.arrivals.pop().expect("peeked");
                let model = req.model.0 as usize;
                self.models[model].queue.push_back(req);
                self.pump(model, at);
            } else {
                self.inner.advance_until(next);
            }
            for c in self.inner.drain_completions() {
                self.on_inner_completion(c);
            }
        }
    }

    fn drain_completions(&mut self) -> Vec<JobCompletion> {
        std::mem::take(&mut self.completions)
    }

    fn name(&self) -> String {
        format!("batched[{}]", self.inner.name())
    }

    fn enable_telemetry(&mut self) {
        self.inner.enable_telemetry()
    }

    fn take_trace_log(&mut self) -> Option<paella_telemetry::TraceLog> {
        self.inner.take_trace_log()
    }

    fn metrics_snapshot(&self) -> Option<paella_telemetry::MetricsSnapshot> {
        self.inner.metrics_snapshot()
    }

    fn load_signal(&self) -> LoadSignal {
        // Requests parked in the batcher's own queues are load the inner
        // system can't see yet; fold them into `queued`.
        let mut s = self.inner.load_signal();
        s.queued += self.arrivals.len() as u64;
        s.queued += self
            .models
            .iter()
            .map(|st| st.queue.len() as u64)
            .sum::<u64>();
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dispatcher::{Dispatcher, DispatcherConfig};
    use crate::sched::SrptDeficitScheduler;
    use crate::types::ClientId;
    use paella_channels::ChannelConfig;
    use paella_gpu::DeviceConfig;

    fn paella() -> Dispatcher {
        Dispatcher::new(
            DeviceConfig::tesla_t4(),
            ChannelConfig::default(),
            Box::new(SrptDeficitScheduler::new(Some(2_000.0))),
            DispatcherConfig::paella(),
            13,
        )
    }

    fn model() -> CompiledModel {
        use paella_gpu::{BlockFootprint, DurationModel, KernelDesc};
        let kernel = KernelDesc {
            name: "bt_op".to_string().into(),
            grid_blocks: 200, // a device-filling kernel: batching pays off
            footprint: BlockFootprint {
                threads: 128,
                regs_per_thread: 16,
                shmem: 0,
            },
            duration: DurationModel::fixed(SimDuration::from_micros(400)),
            instrumentation: None,
        };
        CompiledModel {
            name: "bt".to_string().into(),
            ops: vec![
                DeviceOp::InputCopy { bytes: 4096 },
                DeviceOp::Kernel(kernel.clone()),
                DeviceOp::Kernel(kernel.clone()),
                DeviceOp::Kernel(kernel.clone()),
                DeviceOp::Kernel(kernel),
                DeviceOp::OutputCopy { bytes: 4096 },
            ],
            schedule: None,
            input_bytes: 4096,
            output_bytes: 4096,
            weight_bytes: 0,
            flops: 0,
        }
    }

    #[test]
    fn unsaturated_requests_pass_through_unbatched() {
        let mut b = SaturationBatcher::new(paella(), BatchPolicy::default());
        let id = b.register_model(&model());
        for i in 0..5 {
            b.submit(InferenceRequest {
                client: ClientId(0),
                model: id,
                submitted_at: SimTime::from_millis(i * 10), // far apart
            });
        }
        b.run_to_idle();
        assert_eq!(b.drain_completions().len(), 5);
        assert_eq!(b.batches_formed(), 0, "no batching below saturation");
    }

    #[test]
    fn saturation_triggers_batching_and_raises_throughput() {
        // A burst far beyond capacity: the batcher must engage and finish
        // sooner than the unbatched system.
        let burst = 96u64;
        let makespan = |batch: bool| {
            let policy = BatchPolicy {
                saturation_threshold: if batch { 8 } else { usize::MAX },
                ..BatchPolicy::default()
            };
            let mut b = SaturationBatcher::new(paella(), policy);
            let id = b.register_model(&model());
            for i in 0..burst {
                b.submit(InferenceRequest {
                    client: ClientId((i % 4) as u32),
                    model: id,
                    submitted_at: SimTime::from_micros(i),
                });
            }
            b.run_to_idle();
            let done = b.drain_completions();
            assert_eq!(done.len(), burst as usize);
            (
                done.iter().map(|c| c.client_visible_at).max().unwrap(),
                b.batches_formed(),
            )
        };
        let (t_plain, n0) = makespan(false);
        let (t_batched, n1) = makespan(true);
        assert_eq!(n0, 0);
        assert!(n1 > 0, "saturation must form batches");
        // Batch-8 kernels cost 0.35 + 0.65·8 = 5.55× a single, so the ideal
        // gain is 1 − 5.55/8 ≈ 31%; the unbatched ramp-up eats a little.
        assert!(
            t_batched.as_nanos() * 5 < t_plain.as_nanos() * 4,
            "batching should cut the burst makespan ≥20%: {t_plain} vs {t_batched}"
        );
    }

    #[test]
    fn telemetry_passes_through_the_batcher() {
        let mut b = SaturationBatcher::new(paella(), BatchPolicy::default());
        b.enable_telemetry();
        let id = b.register_model(&model());
        b.submit(InferenceRequest {
            client: ClientId(0),
            model: id,
            submitted_at: SimTime::ZERO,
        });
        b.run_to_idle();
        let trace = b.take_trace_log().expect("inner tracer must be reachable");
        assert!(
            trace.events.iter().any(|e| e.event.kind() == "job-begin"),
            "inner dispatcher events must surface through the wrapper"
        );
        let snap = b.metrics_snapshot().expect("inner metrics must surface");
        assert!(snap.counter("jobs_completed") >= 1);
    }

    #[test]
    fn batching_disengages_when_backlog_drains() {
        // Hysteresis: a saturating burst engages batching, but once the
        // backlog drains below the threshold, later requests pass through
        // unbatched again — no sticky batching mode.
        let mut b = SaturationBatcher::new(paella(), BatchPolicy::default());
        let id = b.register_model(&model());
        let burst = 40u64;
        for i in 0..burst {
            b.submit(InferenceRequest {
                client: ClientId((i % 4) as u32),
                model: id,
                submitted_at: SimTime::from_micros(i),
            });
        }
        // A trickle long after the burst has drained, spaced far apart.
        let tail = 6u64;
        for i in 0..tail {
            b.submit(InferenceRequest {
                client: ClientId(0),
                model: id,
                submitted_at: SimTime::from_millis(400 + i * 20),
            });
        }
        // Run past the burst; it is far over capacity so batching engages.
        b.advance_until(SimTime::from_millis(390));
        let formed_during_burst = b.batches_formed();
        assert!(formed_during_burst > 0, "burst must engage batching");
        assert_eq!(b.drain_completions().len(), burst as usize);
        // The trickle phase must not form a single new batch.
        b.run_to_idle();
        assert_eq!(
            b.batches_formed(),
            formed_during_burst,
            "batching must disengage once the backlog drains"
        );
        assert_eq!(b.drain_completions().len(), tail as usize);
    }

    #[test]
    fn every_request_in_a_batch_completes_once() {
        let mut b = SaturationBatcher::new(
            paella(),
            BatchPolicy {
                saturation_threshold: 2,
                max_batch: 4,
                ..BatchPolicy::default()
            },
        );
        let id = b.register_model(&model());
        for i in 0..20u64 {
            b.submit(InferenceRequest {
                client: ClientId((i % 3) as u32),
                model: id,
                submitted_at: SimTime::from_micros(i * 5),
            });
        }
        b.run_to_idle();
        let done = b.drain_completions();
        assert_eq!(done.len(), 20);
        for c in &done {
            assert!(c.client_visible_at > c.request.submitted_at);
        }
    }
}
