//! Generic discrete-event engine.
//!
//! The engine is a priority queue of `(SimTime, seq, E)` entries. Ties in time
//! break on insertion order (`seq`), which makes every simulation fully
//! deterministic: two events scheduled for the same instant fire in the order
//! they were scheduled.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::{SimDuration, SimTime};

/// Identifier of a scheduled event, usable for cancellation.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct EventId(u64);

struct Entry<E> {
    at: SimTime,
    seq: u64,
    id: EventId,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (then
        // lowest-sequence) entry is popped first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic discrete-event queue over payload type `E`.
///
/// # Examples
///
/// ```
/// use paella_sim::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.schedule_at(SimTime::from_micros(20), "later");
/// q.schedule_at(SimTime::from_micros(10), "sooner");
/// assert_eq!(q.pop(), Some((SimTime::from_micros(10), "sooner")));
/// assert_eq!(q.now(), SimTime::from_micros(10));
/// ```
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    now: SimTime,
    next_seq: u64,
    next_id: u64,
    cancelled: std::collections::HashSet<EventId>,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            now: SimTime::ZERO,
            next_seq: 0,
            next_id: 0,
            cancelled: std::collections::HashSet::new(),
        }
    }

    /// Current simulated time: the timestamp of the last popped event.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending (non-cancelled) events.
    pub fn len(&self) -> usize {
        self.heap.len() - self.cancelled.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Schedules `payload` at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the simulated past.
    pub fn schedule_at(&mut self, at: SimTime, payload: E) -> EventId {
        assert!(
            at >= self.now,
            "scheduling into the past: {at:?} < {:?}",
            self.now
        );
        let id = EventId(self.next_id);
        self.next_id += 1;
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry {
            at,
            seq,
            id,
            payload,
        });
        id
    }

    /// Schedules `payload` after a delay from the current time.
    pub fn schedule_after(&mut self, delay: SimDuration, payload: E) -> EventId {
        let at = self.now.saturating_add(delay);
        self.schedule_at(at, payload)
    }

    /// Cancels a previously scheduled event. Returns `true` if the event was
    /// still pending. Cancelled events are dropped lazily on pop.
    pub fn cancel(&mut self, id: EventId) -> bool {
        if id.0 >= self.next_id {
            return false;
        }
        // Only mark if it could still be in the heap; popping clears marks.
        if self.heap.iter().any(|e| e.id == id) {
            self.cancelled.insert(id)
        } else {
            false
        }
    }

    /// Timestamp of the next event to fire, if any.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        self.skip_cancelled();
        self.heap.peek().map(|e| e.at)
    }

    /// Pops the next event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.skip_cancelled();
        let e = self.heap.pop()?;
        debug_assert!(e.at >= self.now);
        self.now = e.at;
        Some((e.at, e.payload))
    }

    fn skip_cancelled(&mut self) {
        while let Some(top) = self.heap.peek() {
            if self.cancelled.remove(&top.id) {
                self.heap.pop();
            } else {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_nanos(30), "c");
        q.schedule_at(SimTime::from_nanos(10), "a");
        q.schedule_at(SimTime::from_nanos(20), "b");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, ["a", "b", "c"]);
        assert_eq!(q.now(), SimTime::from_nanos(30));
    }

    #[test]
    fn ties_break_on_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_nanos(5);
        for i in 0..10 {
            q.schedule_at(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn schedule_after_uses_current_clock() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_nanos(100), 1);
        q.pop();
        q.schedule_after(SimDuration::from_nanos(50), 2);
        let (t, e) = q.pop().unwrap();
        assert_eq!(e, 2);
        assert_eq!(t, SimTime::from_nanos(150));
    }

    #[test]
    #[should_panic(expected = "scheduling into the past")]
    fn scheduling_into_past_panics() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_nanos(100), 1);
        q.pop();
        q.schedule_at(SimTime::from_nanos(50), 2);
    }

    #[test]
    fn cancel_removes_event() {
        let mut q = EventQueue::new();
        let a = q.schedule_at(SimTime::from_nanos(10), "a");
        q.schedule_at(SimTime::from_nanos(20), "b");
        assert_eq!(q.len(), 2);
        assert!(q.cancel(a));
        assert!(!q.cancel(a), "double-cancel reports false");
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop().unwrap().1, "b");
        assert!(q.pop().is_none());
    }

    #[test]
    fn cancel_unknown_id_is_noop() {
        let mut q: EventQueue<u8> = EventQueue::new();
        assert!(!q.cancel(EventId(99)));
    }

    #[test]
    fn peek_time_skips_cancelled() {
        let mut q = EventQueue::new();
        let a = q.schedule_at(SimTime::from_nanos(10), "a");
        q.schedule_at(SimTime::from_nanos(20), "b");
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(20)));
    }

    #[test]
    fn empty_queue_behaviour() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        assert!(q.pop().is_none());
    }
}
