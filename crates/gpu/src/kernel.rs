//! Kernel descriptions, launches, and duration models.

use paella_channels::KernelUid;
use paella_sim::rng::Xoshiro256pp;
use paella_sim::SimDuration;

use crate::resources::BlockFootprint;

/// How long a block (group) of this kernel runs once placed.
///
/// Durations are sampled at placement time: a base cost plus optional
/// multiplicative lognormal-ish jitter (modelled as `base × (1 + j)` with `j`
/// drawn uniformly from `[-jitter_frac, +jitter_frac]` for determinism and
/// boundedness).
#[derive(Clone, Copy, Debug)]
pub struct DurationModel {
    /// Mean per-block execution time.
    pub base: SimDuration,
    /// Fractional jitter half-width (0 for deterministic kernels).
    pub jitter_frac: f64,
}

impl DurationModel {
    /// A deterministic duration.
    pub fn fixed(base: SimDuration) -> Self {
        DurationModel {
            base,
            jitter_frac: 0.0,
        }
    }

    /// A duration with ±`jitter_frac` uniform jitter.
    pub fn jittered(base: SimDuration, jitter_frac: f64) -> Self {
        assert!((0.0..1.0).contains(&jitter_frac), "jitter must be in [0,1)");
        DurationModel { base, jitter_frac }
    }

    /// Samples one block-group duration.
    pub fn sample(&self, rng: &mut Xoshiro256pp) -> SimDuration {
        if self.jitter_frac == 0.0 {
            self.base
        } else {
            let j = (rng.next_f64() * 2.0 - 1.0) * self.jitter_frac;
            self.base.mul_f64(1.0 + j)
        }
    }
}

/// Instrumentation parameters added by the Paella compiler pass (§4.1).
///
/// The cost model follows the paper's Fig. 15 measurement: the bare
/// notification writes add a small per-block cost (the tail `atomicInc` is
/// the only serialization point), while the aggregation conditional adds a
/// mostly block-count-independent base cost (~5.5 µs at 16 blocks vs ~6.6 µs
/// at 160 in the paper) plus a small per-block term.
#[derive(Clone, Copy, Debug)]
pub struct InstrumentationSpec {
    /// Aggregate start/end notifications over groups of up to this many
    /// blocks (16 in the paper; 1 disables aggregation).
    pub aggregation: u32,
    /// Per-kernel overhead of the aggregation machinery (start/end counters,
    /// the modulo conditional, extra parameter traffic).
    pub base_overhead: SimDuration,
    /// Per-block overhead across both notify phases.
    pub per_block_overhead: SimDuration,
}

impl Default for InstrumentationSpec {
    fn default() -> Self {
        // Calibrated against Fig. 15: agg(16 blks) ≈ 5.5 µs,
        // agg(160 blks) ≈ 6.6 µs over the uninstrumented kernel.
        InstrumentationSpec {
            aggregation: 16,
            base_overhead: SimDuration::from_nanos(5_400),
            per_block_overhead: SimDuration::from_nanos(7),
        }
    }
}

impl InstrumentationSpec {
    /// Instrumentation without aggregation: every block notifies directly.
    /// Calibrated against Fig. 15's "no agg" curves (160 blks ≈ 2.2 µs).
    pub fn without_aggregation() -> Self {
        InstrumentationSpec {
            aggregation: 1,
            base_overhead: SimDuration::ZERO,
            per_block_overhead: SimDuration::from_nanos(13),
        }
    }

    /// How many notifications a grid of `blocks` posts per phase
    /// (placement or completion).
    pub fn notifications_for(&self, blocks: u32) -> u32 {
        if blocks == 0 {
            return 0;
        }
        // One per full group of `aggregation`, plus one for the final block
        // (`startCount == TOTAL_BLOCKS` in Fig. 6) if it didn't land exactly
        // on a group boundary.
        let agg = self.aggregation.max(1);
        blocks.div_ceil(agg)
    }

    /// Device-side overhead added to the kernel's critical path by the
    /// instrumentation, for a grid of `blocks` blocks.
    pub fn kernel_overhead(&self, blocks: u32) -> SimDuration {
        self.base_overhead + self.per_block_overhead * blocks as u64
    }
}

/// A compiled kernel: the unit the host launches.
#[derive(Clone, Debug)]
pub struct KernelDesc {
    /// Human-readable name (e.g. `"conv2d_3x3_64"`); used by the profiler to
    /// key per-kernel statistics. Interned as `Arc<str>`: the engine labels
    /// every per-wave trace span with it, so a plain `String` would be
    /// cloned once per wave on the hot path.
    pub name: std::sync::Arc<str>,
    /// Number of thread blocks in the grid (`Dg`).
    pub grid_blocks: u32,
    /// Per-block resource footprint.
    pub footprint: BlockFootprint,
    /// Per-block duration model.
    pub duration: DurationModel,
    /// Instrumentation added by the Paella compiler, if any.
    pub instrumentation: Option<InstrumentationSpec>,
}

impl KernelDesc {
    /// A minimal kernel for tests and microbenchmarks: `blocks` blocks of 32
    /// threads doing nothing but (optionally) notifying.
    pub fn empty(name: &str, blocks: u32) -> Self {
        KernelDesc {
            name: name.into(),
            grid_blocks: blocks,
            footprint: BlockFootprint {
                threads: 32,
                regs_per_thread: 8,
                shmem: 0,
            },
            duration: DurationModel::fixed(SimDuration::from_nanos(500)),
            instrumentation: None,
        }
    }

    /// Returns a copy with instrumentation attached.
    pub fn instrumented(mut self, spec: InstrumentationSpec) -> Self {
        self.instrumentation = Some(spec);
        self
    }
}

/// A kernel launch command as it reaches the (simulated) device: the kernel,
/// the stream it was submitted on, and the dispatcher-assigned unique id.
#[derive(Clone, Debug)]
pub struct KernelLaunch {
    /// Unique id for this execution, generated host-side.
    pub uid: KernelUid,
    /// CUDA stream the launch was submitted to.
    pub stream: StreamId,
    /// The kernel itself.
    pub desc: KernelDesc,
}

/// Identifier of a (real) CUDA stream on the device.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct StreamId(pub u32);

impl StreamId {
    /// The default stream (stream 0), which serializes against all others
    /// under legacy semantics.
    pub const DEFAULT: StreamId = StreamId(0);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_duration_is_deterministic() {
        let m = DurationModel::fixed(SimDuration::from_micros(300));
        let mut rng = Xoshiro256pp::seed_from_u64(1);
        assert_eq!(m.sample(&mut rng), SimDuration::from_micros(300));
        assert_eq!(m.sample(&mut rng), SimDuration::from_micros(300));
    }

    #[test]
    fn jittered_duration_bounded() {
        let base = SimDuration::from_micros(100);
        let m = DurationModel::jittered(base, 0.2);
        let mut rng = Xoshiro256pp::seed_from_u64(2);
        for _ in 0..1000 {
            let d = m.sample(&mut rng);
            assert!(d >= SimDuration::from_micros(80));
            assert!(d <= SimDuration::from_micros(120));
        }
    }

    #[test]
    #[should_panic(expected = "jitter must be in [0,1)")]
    fn bad_jitter_panics() {
        DurationModel::jittered(SimDuration::from_micros(1), 1.5);
    }

    #[test]
    fn notification_counts_match_fig6_semantics() {
        let spec = InstrumentationSpec::default(); // aggregation = 16
        assert_eq!(spec.notifications_for(0), 0);
        assert_eq!(spec.notifications_for(1), 1); // final block always posts
        assert_eq!(spec.notifications_for(16), 1);
        assert_eq!(spec.notifications_for(17), 2);
        assert_eq!(spec.notifications_for(160), 10);
        let noagg = InstrumentationSpec::without_aggregation();
        assert_eq!(noagg.notifications_for(160), 160);
    }

    #[test]
    fn overhead_matches_fig15_calibration() {
        let agg = InstrumentationSpec::default();
        let noagg = InstrumentationSpec::without_aggregation();
        // Aggregation posts far fewer notifications…
        assert!(agg.notifications_for(160) < noagg.notifications_for(160));
        // …but costs more device time (the Fig. 15 ordering): ~5.5 µs at 16
        // blocks and ~6.6 µs at 160 vs ~2.2 µs unaggregated at 160.
        let agg16 = agg.kernel_overhead(16).as_micros_f64();
        let agg160 = agg.kernel_overhead(160).as_micros_f64();
        let noagg160 = noagg.kernel_overhead(160).as_micros_f64();
        assert!((5.0..6.0).contains(&agg16), "agg16 = {agg16}");
        assert!((6.0..7.2).contains(&agg160), "agg160 = {agg160}");
        assert!((1.8..2.6).contains(&noagg160), "noagg160 = {noagg160}");
        assert!(agg16 < agg160);
        assert!(noagg160 < agg16);
    }

    #[test]
    fn empty_kernel_shape() {
        let k = KernelDesc::empty("noop", 160);
        assert_eq!(k.grid_blocks, 160);
        assert!(k.instrumentation.is_none());
        let k = k.instrumented(InstrumentationSpec::default());
        assert_eq!(k.instrumentation.unwrap().aggregation, 16);
    }
}
