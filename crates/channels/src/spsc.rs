//! Bounded lock-free single-producer/single-consumer ring.
//!
//! This is the client→dispatcher request channel of §5.1: each client owns a
//! shared-memory region and posts raw request descriptors; the dispatcher
//! polls every client ring round-robin. Head and tail live on separate cache
//! lines to avoid false sharing between the two sides.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

/// Pads a value to a cache line to prevent false sharing.
#[repr(align(64))]
struct CachePadded<T>(T);

struct Shared<T> {
    buf: Box<[UnsafeCell<MaybeUninit<T>>]>,
    cap: usize,
    head: CachePadded<AtomicUsize>, // next slot to read
    tail: CachePadded<AtomicUsize>, // next slot to write
    producer_alive: AtomicBool,
    consumer_alive: AtomicBool,
}

// SAFETY: slots are transferred between threads with acquire/release on
// head/tail; a slot is only accessed by the producer before publishing via
// `tail` and only by the consumer after observing that publish, so no slot is
// ever aliased concurrently. `T: Send` is required because values cross
// threads.
unsafe impl<T: Send> Send for Shared<T> {}
// SAFETY: see above; &Shared is only used through the single Producer and
// single Consumer handles, which partition the slots.
unsafe impl<T: Send> Sync for Shared<T> {}

impl<T> Drop for Shared<T> {
    fn drop(&mut self) {
        // Drop any queued-but-unread items.
        // relaxed: by the time Shared drops both handles are gone, and the
        // Arc's reference-count decrement already synchronized their final
        // writes with this thread — no concurrent access remains.
        let head = self.head.0.load(Ordering::Relaxed);
        // relaxed: same reasoning as head above.
        let tail = self.tail.0.load(Ordering::Relaxed);
        let mut i = head;
        while i != tail {
            // SAFETY: slots in [head, tail) were initialized by the producer
            // and never consumed.
            unsafe { (*self.buf[i % self.cap].get()).assume_init_drop() };
            i = i.wrapping_add(1);
        }
    }
}

/// The sending half of an SPSC ring.
pub struct Producer<T> {
    shared: Arc<Shared<T>>,
    cached_head: usize,
}

/// The receiving half of an SPSC ring.
pub struct Consumer<T> {
    shared: Arc<Shared<T>>,
    cached_tail: usize,
}

/// Error returned by [`Producer::push`] when the ring is full or the consumer
/// is gone.
#[derive(Debug, PartialEq, Eq)]
pub enum PushError<T> {
    /// The ring is full; the value is handed back.
    Full(T),
    /// The consumer has been dropped; the value is handed back.
    Disconnected(T),
}

/// Error returned by [`Consumer::pop`] when no item is ready.
#[derive(Debug, PartialEq, Eq, Clone, Copy)]
pub enum PopError {
    /// The ring is currently empty.
    Empty,
    /// The ring is empty and the producer has been dropped.
    Disconnected,
}

/// Creates a bounded SPSC ring with capacity for `cap` in-flight items.
///
/// # Examples
///
/// ```
/// let (mut tx, mut rx) = paella_channels::ring::<u32>(8);
/// tx.push(7).unwrap();
/// assert_eq!(rx.pop().unwrap(), 7);
/// ```
///
/// # Panics
///
/// Panics if `cap == 0`.
pub fn ring<T: Send>(cap: usize) -> (Producer<T>, Consumer<T>) {
    assert!(cap > 0, "ring capacity must be positive");
    let shared = Arc::new(Shared {
        buf: (0..cap)
            .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
            .collect(),
        cap,
        head: CachePadded(AtomicUsize::new(0)),
        tail: CachePadded(AtomicUsize::new(0)),
        producer_alive: AtomicBool::new(true),
        consumer_alive: AtomicBool::new(true),
    });
    (
        Producer {
            shared: Arc::clone(&shared),
            cached_head: 0,
        },
        Consumer {
            shared,
            cached_tail: 0,
        },
    )
}

impl<T: Send> Producer<T> {
    /// Attempts to enqueue `value` without blocking.
    pub fn push(&mut self, value: T) -> Result<(), PushError<T>> {
        let s = &*self.shared;
        // acquire: pairs with the consumer's release store in its Drop, so a
        // disconnect observed here is ordered after the consumer's last pop.
        if !s.consumer_alive.load(Ordering::Acquire) {
            return Err(PushError::Disconnected(value));
        }
        // relaxed: tail is written only by this producer thread; reading our
        // own last store needs no synchronization.
        let tail = s.tail.0.load(Ordering::Relaxed);
        if tail.wrapping_sub(self.cached_head) >= s.cap {
            // Refresh the consumer's progress before declaring the ring full.
            // acquire: pairs with the consumer's release head store in
            // take(); we may only overwrite a slot after its read completed.
            self.cached_head = s.head.0.load(Ordering::Acquire);
            if tail.wrapping_sub(self.cached_head) >= s.cap {
                return Err(PushError::Full(value));
            }
        }
        // SAFETY: slot `tail % cap` is outside [head, tail), so the consumer
        // will not touch it until we publish the new tail below.
        unsafe { (*s.buf[tail % s.cap].get()).write(value) };
        // release: publishes the slot write above; the consumer's acquire
        // tail load sees the value fully initialized.
        s.tail.0.store(tail.wrapping_add(1), Ordering::Release);
        Ok(())
    }

    /// Number of free slots (a lower bound from the producer's view).
    pub fn free_len(&self) -> usize {
        let s = &*self.shared;
        // acquire: a slot counted free must have finished being read (pairs
        // with the consumer's release head store).
        let head = s.head.0.load(Ordering::Acquire);
        // relaxed: self-read of the producer-owned cursor.
        let tail = s.tail.0.load(Ordering::Relaxed);
        s.cap - tail.wrapping_sub(head)
    }
}

impl<T> Drop for Producer<T> {
    fn drop(&mut self) {
        // release: orders our final push before the death flag, so a consumer
        // that observes `!alive` and re-checks tail sees that last item.
        self.shared.producer_alive.store(false, Ordering::Release);
    }
}

impl<T: Send> Consumer<T> {
    /// Attempts to dequeue one item without blocking.
    pub fn pop(&mut self) -> Result<T, PopError> {
        let s = &*self.shared;
        // relaxed: head is written only by this consumer thread; reading our
        // own last store needs no synchronization.
        let head = s.head.0.load(Ordering::Relaxed);
        if head == self.cached_tail {
            // acquire: pairs with the producer's release tail store, making
            // the published slot's contents visible before we read them.
            self.cached_tail = s.tail.0.load(Ordering::Acquire);
            if head == self.cached_tail {
                // acquire: pairs with the producer Drop's release store, so
                // the death flag is ordered after its final push.
                return if s.producer_alive.load(Ordering::Acquire) {
                    Err(PopError::Empty)
                } else {
                    // Re-check after observing the death flag: the producer
                    // may have pushed right before dropping.
                    // acquire: same pairing as the tail load above.
                    self.cached_tail = s.tail.0.load(Ordering::Acquire);
                    if head == self.cached_tail {
                        Err(PopError::Disconnected)
                    } else {
                        Ok(self.take(head))
                    }
                };
            }
        }
        Ok(self.take(head))
    }

    fn take(&mut self, head: usize) -> T {
        let s = &*self.shared;
        // SAFETY: head < tail, so this slot holds an initialized value that
        // the producer published with a release store and will not reuse
        // until we advance `head`.
        let value = unsafe { (*s.buf[head % s.cap].get()).assume_init_read() };
        // release: hands the slot back to the producer — the read above must
        // complete before the producer's acquire head load can see the
        // advanced cursor and overwrite the slot.
        s.head.0.store(head.wrapping_add(1), Ordering::Release);
        value
    }

    /// Number of items currently queued (an upper bound from the consumer's
    /// view).
    pub fn len(&self) -> usize {
        let s = &*self.shared;
        // acquire: an item counted here must be fully published (pairs with
        // the producer's release tail store).
        let tail = s.tail.0.load(Ordering::Acquire);
        // relaxed: self-read of the consumer-owned cursor.
        let head = s.head.0.load(Ordering::Relaxed);
        tail.wrapping_sub(head)
    }

    /// Whether the ring appears empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Drop for Consumer<T> {
    fn drop(&mut self) {
        // release: orders our final pops before the death flag the producer
        // reads with acquire in push().
        self.shared.consumer_alive.store(false, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn fifo_order_single_thread() {
        let (mut tx, mut rx) = ring::<u32>(4);
        for i in 0..4 {
            tx.push(i).unwrap();
        }
        assert!(matches!(tx.push(99), Err(PushError::Full(99))));
        for i in 0..4 {
            assert_eq!(rx.pop().unwrap(), i);
        }
        assert_eq!(rx.pop(), Err(PopError::Empty));
    }

    #[test]
    fn wraparound_many_times() {
        let (mut tx, mut rx) = ring::<usize>(3);
        for round in 0..1000 {
            tx.push(round).unwrap();
            assert_eq!(rx.pop().unwrap(), round);
        }
    }

    #[test]
    fn len_and_free_len() {
        let (mut tx, mut rx) = ring::<u8>(8);
        assert_eq!(rx.len(), 0);
        assert!(rx.is_empty());
        assert_eq!(tx.free_len(), 8);
        tx.push(1).unwrap();
        tx.push(2).unwrap();
        assert_eq!(rx.len(), 2);
        assert_eq!(tx.free_len(), 6);
        rx.pop().unwrap();
        assert_eq!(rx.len(), 1);
    }

    #[test]
    fn producer_drop_signals_disconnect_after_drain() {
        let (mut tx, mut rx) = ring::<u8>(2);
        tx.push(7).unwrap();
        drop(tx);
        assert_eq!(rx.pop().unwrap(), 7);
        assert_eq!(rx.pop(), Err(PopError::Disconnected));
    }

    #[test]
    fn consumer_drop_signals_disconnect() {
        let (mut tx, rx) = ring::<u8>(2);
        drop(rx);
        assert!(matches!(tx.push(1), Err(PushError::Disconnected(1))));
    }

    #[test]
    fn unread_items_are_dropped() {
        use std::sync::atomic::AtomicUsize;
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        #[derive(Debug)]
        struct D;
        impl Drop for D {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::SeqCst);
            }
        }
        let (mut tx, rx) = ring::<D>(4);
        tx.push(D).unwrap();
        tx.push(D).unwrap();
        drop(tx);
        drop(rx);
        assert_eq!(DROPS.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn cross_thread_stress_preserves_order_and_items() {
        const N: usize = 200_000;
        let (mut tx, mut rx) = ring::<usize>(64);
        let producer = thread::spawn(move || {
            for i in 0..N {
                let mut v = i;
                loop {
                    match tx.push(v) {
                        Ok(()) => break,
                        Err(PushError::Full(back)) => {
                            v = back;
                            std::hint::spin_loop();
                        }
                        Err(PushError::Disconnected(_)) => panic!("consumer died"),
                    }
                }
            }
        });
        let mut expected = 0usize;
        while expected < N {
            match rx.pop() {
                Ok(v) => {
                    assert_eq!(v, expected, "items must arrive in order");
                    expected += 1;
                }
                Err(PopError::Empty) => std::hint::spin_loop(),
                Err(PopError::Disconnected) => break,
            }
        }
        producer.join().unwrap();
        assert_eq!(expected, N);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = ring::<u8>(0);
    }
}
