//! Autoregressive model specifications.
//!
//! Where the fixed-trace tier registers a [`CompiledModel`] whose kernel
//! sequence is known at compile time, an LLM's work is only *partially*
//! known at admission: the prompt length is visible up front, but the
//! output length is revealed one decode step at a time. The spec therefore
//! carries seeded *distributions* (lognormal prompts, geometric outputs) —
//! per-request lengths are sampled once at submission so every policy under
//! test sees the identical per-request work.
//!
//! [`CompiledModel`]: paella_compiler::CompiledModel

use std::sync::Arc;

use paella_sim::dist::{Distribution, Geometric, LogNormal};
use paella_sim::Xoshiro256pp;

/// One autoregressive model's workload shape and cost coefficients.
#[derive(Clone, Debug)]
pub struct LlmModelSpec {
    /// Display name (interned; shared with trace events).
    pub name: Arc<str>,
    /// Prompt-length distribution (tokens; lognormal like real chat traces,
    /// where most prompts are short and a heavy tail paginates documents).
    pub prompt: LogNormal,
    /// Mean output length in tokens; outputs are geometric (each decode
    /// step emits EOS with probability `1/mean` — memoryless, like sampled
    /// generation).
    pub mean_output_tokens: f64,
    /// Prompt lengths are clamped to `1..=max_prompt_tokens`.
    pub max_prompt_tokens: u64,
    /// Output lengths are clamped to `1..=max_output_tokens`.
    pub max_output_tokens: u64,
}

impl LlmModelSpec {
    /// A chat-shaped spec: lognormal prompts around `mean_prompt` tokens,
    /// geometric outputs around `mean_output` tokens.
    ///
    /// # Panics
    ///
    /// Panics if either mean is not at least 1.
    pub fn chat(name: &str, mean_prompt: f64, mean_output: f64) -> Self {
        assert!(mean_prompt >= 1.0, "mean prompt must be >= 1 token");
        assert!(mean_output >= 1.0, "mean output must be >= 1 token");
        LlmModelSpec {
            name: name.into(),
            prompt: LogNormal::with_mean(mean_prompt, 0.8),
            mean_output_tokens: mean_output,
            max_prompt_tokens: (mean_prompt * 8.0) as u64 + 1,
            max_output_tokens: (mean_output * 8.0) as u64 + 1,
        }
    }

    /// Samples one request's `(prompt_tokens, output_tokens)` pair. Both
    /// are at least 1 and respect the spec's caps; each call consumes a
    /// fixed number of RNG draws, so the sampling stream stays aligned
    /// across policies fed the same submission order.
    pub fn sample_lengths(&self, rng: &mut Xoshiro256pp) -> (u64, u64) {
        let p = self.prompt.sample(rng);
        let prompt = if p < 1.0 {
            1
        } else {
            (p as u64).min(self.max_prompt_tokens)
        };
        let out = Geometric::with_mean(self.mean_output_tokens)
            .sample_u64(rng)
            .min(self.max_output_tokens);
        (prompt, out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lengths_are_bounded_and_deterministic() {
        let spec = LlmModelSpec::chat("llama-7b", 128.0, 64.0);
        let draw = |seed: u64| {
            let mut rng = Xoshiro256pp::seed_from_u64(seed);
            (0..1000)
                .map(|_| spec.sample_lengths(&mut rng))
                .collect::<Vec<_>>()
        };
        let a = draw(7);
        assert_eq!(a, draw(7), "same seed, same lengths");
        for &(p, o) in &a {
            assert!(p >= 1 && p <= spec.max_prompt_tokens);
            assert!(o >= 1 && o <= spec.max_output_tokens);
        }
        let mean_p = a.iter().map(|&(p, _)| p).sum::<u64>() as f64 / a.len() as f64;
        assert!(
            (mean_p - 128.0).abs() < 32.0,
            "prompt mean {mean_p} should be near 128"
        );
    }
}
